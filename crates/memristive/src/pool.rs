//! Persistent mat-shard worker pool — standing concurrency for the
//! column search (§IV-B.2, Fig. 9).
//!
//! In hardware every mat is always powered and listening: the chip
//! controller broadcasts one step descriptor per column search and the
//! per-mat signals meet at fixed wire-OR nodes on the way back up the
//! H-tree. The earlier model approximated that with a fresh
//! `std::thread::scope` per step — up to ~128 spawn/join rounds per
//! 64-bit key. [`MatPool`] replaces the per-step fan-out with the
//! hardware shape: long-lived shard executors each own a fixed
//! contiguous shard of the range's mats for the duration of an
//! extraction *session* (lease → steps → unlease), and the controller
//! drives them by broadcasting epoch-tagged requests over per-worker
//! channels. The controller itself is shard executor 0 (**leader
//! participation**): instead of blocking in `recv` while one more
//! worker wakes, it runs shard 0 inline between the broadcast and the
//! fold — one fewer park/wake cycle per round trip (decisive when the
//! executors timeshare few cores) and overlapped compute on multicore
//! hosts.
//!
//! # Protocol
//!
//! - **Lease** moves the session's mats into the workers (the crate
//!   forbids `unsafe`, so persistent threads cannot borrow chip state;
//!   moving the ~40-byte `Mat` headers is cheap — the heap storage never
//!   moves). Shards are contiguous and assigned in worker order.
//! - **Descend** broadcasts one *whole bit-serial descent* (all
//!   `plan.steps()` sense/exclude steps of one key) in a single message.
//!   Each worker runs its shard's descent **speculatively** against its
//!   local wire-OR view, recording a per-step `ShardTrace` (packed
//!   signals, active-mat counts, local exclusion decisions, final
//!   per-mat firsts and raw bits). The controller folds the traces in
//!   worker index order — the fixed-order reduction that stands in for
//!   the H-tree's wired OR nodes — reconstructing the exact global
//!   decision sequence and every counter Sequential would produce, at
//!   the cost of **one** broadcast→fold round trip per key instead of
//!   one per bit.
//! - **ReplaySuffix** re-runs one shard's descent from a fold point when
//!   the shard's trace cannot serve the fold (it bailed early, or its
//!   local decision contradicts the reconstructed global one). The
//!   controller ships the authoritative decision prefix; the worker
//!   re-arms from the membership vector, fast-forwards the prefix, and
//!   speculates the suffix. Replay is bounded: each round extends the
//!   agreed prefix by at least one step (see *Why speculation is exact*).
//! - **Trace memoization** (batch extraction): a shard's trace is a pure
//!   function of its stored keys, the membership restricted to the
//!   shard, and the plan. Clearing one winner's membership bit dirties
//!   exactly one shard, so consecutive descents re-speculate *only the
//!   previous winner's shard* and fold everyone else's memoized trace —
//!   per-key compute drops by roughly the shard count and untouched
//!   workers are not even woken. Purity makes the cache hit
//!   bit-identical to re-speculating; partial traces (bailed initial
//!   runs, replayed suffixes) are never reused.
//! - **Sense/Exclude** remain as single-step messages for incremental
//!   callers and the calibration pass.
//! - **Rearm** re-latches every shard's select windows from a shared
//!   membership bitmap (batch extraction). It is fire-and-forget: the
//!   per-worker channel is FIFO, so the next reply-bearing request
//!   doubles as its barrier.
//! - **Unlease** moves the mats back to the chip at session end.
//!
//! Every reply carries the epoch of the request that triggered it and
//! the controller asserts the match, so a protocol desync (a lost or
//! reordered reply) is loud, never silent corruption.
//!
//! # Why speculation is exact
//!
//! Invariant: at every fold step each shard is either **in-sync** (its
//! local speculative select state equals the global surviving set
//! restricted to the shard) or **dead** (that restriction is empty, and
//! the controller ignores everything the shard reported after its death
//! step). An in-sync shard's recorded signals are exactly its global
//! contribution, so the fold's wired-OR is exact. At an exclusion step
//! three cases exhaust an alive shard:
//!
//! * **Locally mixed** (both signals raised): exclusion is monotone —
//!   `select &= col` depends only on the keep bit, and the shard's local
//!   keep equals the global keep. For integer formats the keep bit is
//!   signal-independent; for floats the only signal-derived input is the
//!   sign-step survivor polarity, and an alive shard's local polarity
//!   provably equals the global one (a shard whose polarity would differ
//!   is uniform in the discarded sign and dies at the sign step). So the
//!   shard's speculative exclusion removed exactly the global victims
//!   inside the shard: still in-sync.
//! * **Uniform in the kept bit**: neither the global nor the local step
//!   removes anything from the shard: still in-sync.
//! * **Uniform in the discarded bit**: globally every survivor in the
//!   shard is removed — the shard **dies**. The controller accounts its
//!   tracked remaining count as removed and masks all later trace data.
//!   The worker's continued local descent is garbage but harmless:
//!   every lease/rearm rebuilds select state from scratch.
//!
//! A *globally* uniform step raises the all-0-or-1 veto, and every alive
//! shard saw a uniform (or silent) column too, so nobody excluded:
//! in-sync. By induction the fold never observes a divergent alive
//! shard, so replay never fires on the natural path — it exists as a
//! defensive bound (and is exercised via the force-replay test knob).
//! Each replay round re-syncs a shard to the full agreed prefix, which
//! then grows by at least one step before that shard can lag again,
//! so replays per descent are bounded by the step count.
//!
//! # Why counters are scheduling-invariant
//!
//! Traces are folded in worker order and both reductions (signal OR,
//! active-mat / removed-row sums) are commutative over disjoint shards,
//! so hits *and every [`crate::OpCounters`] field* derived from them are
//! bit-identical to [`crate::ParallelPolicy::Sequential`] at any worker
//! count. The differential suites assert exactly that.

use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, OnceLock};
use std::thread::JoinHandle;
use std::time::Instant;

use crate::array::ColumnSignals;
use crate::bitmap::Bitmap;
use crate::mat::Mat;
use crate::plan::SearchPlan;
use crate::probe::SharedProbe;

/// Requests broadcast (or targeted) from the chip controller to workers.
enum Request {
    /// Move a shard of the session's mats into the worker.
    /// Fire-and-forget (like [`Request::Rearm`]): the per-worker channel
    /// is FIFO, so the next reply-bearing request doubles as its
    /// barrier, and only reply-bearing requests carry epochs.
    Lease {
        /// Global mat index of the shard's first mat.
        base: usize,
        /// Key slots per mat (for select-window offsets).
        slots_per_mat: usize,
        /// Route through the row-major scalar oracle.
        scalar: bool,
        /// Accumulate per-request busy time for this session (set only
        /// when a probe is installed — the untimed path reads no clocks).
        timed: bool,
        mats: Vec<Option<Mat>>,
    },
    /// One column-search step: sense bit `pos` on every active mat.
    Sense { epoch: u64, pos: u16 },
    /// One exclusion step: latch the match vector for (`pos`, `keep`).
    Exclude { epoch: u64, pos: u16, keep: bool },
    /// One whole bit-serial descent, run speculatively against the
    /// shard's local wire-OR view. `bail_at` is the force-replay test
    /// knob: stop speculating after that many steps so the controller
    /// must exercise [`Request::ReplaySuffix`]. `rearm`, when set,
    /// re-latches the shard's select windows from the membership vector
    /// first — fusing what used to be a separate [`Request::Rearm`]
    /// broadcast into the descent saves one park/wake cycle per
    /// extraction, which matters when workers timeshare few cores.
    Descend {
        epoch: u64,
        plan: SearchPlan,
        bail_at: Option<u16>,
        rearm: Option<Arc<Bitmap>>,
    },
    /// Re-run the shard's descent from step `resume`: re-arm from the
    /// membership vector, fast-forward the authoritative decision prefix
    /// (`decided`/`keeps` bits below `resume`), then speculate the
    /// suffix with the given survivor polarity.
    ReplaySuffix {
        epoch: u64,
        plan: SearchPlan,
        membership: Arc<Bitmap>,
        decided: u64,
        keeps: u64,
        resume: u16,
        survivors_negative: bool,
    },
    /// Re-latch the shard's select windows from the membership vector.
    Rearm { membership: Arc<Bitmap> },
    /// Report the first selected row per mat in the shard.
    FirstSelected { epoch: u64 },
    /// Read the raw bits of row `slot` in shard-local mat `mat`.
    ReadSlot { epoch: u64, mat: usize, slot: u32 },
    /// Move the shard's mats back to the chip.
    Unlease { epoch: u64 },
}

/// Replies from a worker; each carries the epoch of its request.
enum Reply {
    Signals {
        epoch: u64,
        signals: ColumnSignals,
        active: u64,
    },
    Removed {
        epoch: u64,
        removed: u64,
    },
    Firsts {
        epoch: u64,
        firsts: Vec<Option<u32>>,
    },
    Raw {
        epoch: u64,
        raw: u64,
    },
    Trace {
        epoch: u64,
        trace: ShardTrace,
    },
    Mats {
        epoch: u64,
        mats: Vec<Option<Mat>>,
        /// Nanoseconds this worker spent processing requests during the
        /// session (0 when the session was untimed).
        busy_ns: u64,
    },
}

/// The mats a worker holds between lease and unlease.
struct Shard {
    base: usize,
    slots_per_mat: usize,
    scalar: bool,
    mats: Vec<Option<Mat>>,
}

/// Everything one shard recorded while speculatively running a descent.
///
/// Per-step signals and decisions are bit-packed (bit `s` = step `s`;
/// key widths never exceed 64 steps) so a whole descent's trace is a few
/// words plus the per-step count vectors.
struct ShardTrace {
    /// Bit `s`: the shard's local `any_one` at step `s`.
    any_one: u64,
    /// Bit `s`: the shard's local `any_zero` at step `s`.
    any_zero: u64,
    /// Bit `s`: the shard applied a local exclusion at step `s`.
    decided: u64,
    /// Bit `s`: the keep bit the shard used where `decided` is set.
    keeps: u64,
    /// Mats with a nonempty selection at each step (indexed by step).
    active: Vec<u64>,
    /// Rows the shard's local exclusion removed at each step.
    removed: Vec<u64>,
    /// Selected rows in the shard when this run started.
    initial_selected: u64,
    /// First step this run covers (0 for an initial speculation, the
    /// resume point for a replay — replay traces are *suffixes* and
    /// must never be reused as whole-descent traces).
    start: u16,
    /// Steps covered: trace data is valid for steps `< ran` (a bailed
    /// run under the force-replay knob covers fewer than `plan.steps()`).
    ran: u16,
    /// First selected slot per mat (shard-local mat order, mat-local
    /// slot index) after the run.
    firsts: Vec<Option<u32>>,
    /// Raw bits of each mat's first selected slot (0 where none).
    raws: Vec<u64>,
}

impl ShardTrace {
    /// Whether this trace covers a whole descent from step 0 — the
    /// precondition for memoized reuse. Bailed runs (force-replay knob)
    /// and replayed suffixes are partial and must re-speculate.
    fn is_full(&self, steps: u16) -> bool {
        self.start == 0 && self.ran == steps
    }
}

impl Shard {
    fn selected_total(&self) -> u64 {
        self.mats
            .iter()
            .flatten()
            .map(|m| m.selected_count() as u64)
            .sum()
    }

    /// Runs steps `[start, bail_at.unwrap_or(steps))` of `plan`
    /// speculatively against the shard's local wire-OR view and records
    /// the trace.
    ///
    /// The trace always covers every step up to the bail point, but the
    /// worker stops *physically* stepping once its local set collapses
    /// to at most one survivor: from there on no local exclusion can
    /// fire (a singleton is all-same at every column and an empty shard
    /// is silent), so the rest of the trace is fully determined by the
    /// survivor's stored bits and is synthesized from one row read
    /// instead of sensed column by column. This is what lets a pooled
    /// descent do *less* total column work than the sequential walk —
    /// each shard's local collapse (`log2(shard keys)` steps) comes
    /// earlier than the global one.
    fn speculate(
        &mut self,
        plan: &SearchPlan,
        start: u16,
        mut survivors_negative: bool,
        bail_at: Option<u16>,
    ) -> ShardTrace {
        let steps = plan.steps();
        let stop = bail_at.unwrap_or(steps).min(steps);
        let mut trace = ShardTrace {
            any_one: 0,
            any_zero: 0,
            decided: 0,
            keeps: 0,
            active: vec![0; steps as usize],
            removed: vec![0; steps as usize],
            initial_selected: self.selected_total(),
            start,
            ran: stop,
            firsts: Vec::with_capacity(self.mats.len()),
            raws: Vec::with_capacity(self.mats.len()),
        };
        let mut running = trace.initial_selected;
        let mut resume = stop;
        for step in start..stop {
            if running <= 1 {
                resume = step;
                break;
            }
            let pos = plan.position(step);
            let mut signals = ColumnSignals::default();
            let mut active = 0u64;
            for mat in self.mats.iter().flatten() {
                if mat.selected_count() == 0 {
                    continue;
                }
                active += 1;
                signals.merge(sense_mat(mat, pos, self.scalar));
            }
            trace.active[step as usize] = active;
            if signals.any_one {
                trace.any_one |= 1 << step;
            }
            if signals.any_zero {
                trace.any_zero |= 1 << step;
            }
            if plan.is_sign_step(step) {
                survivors_negative = plan.survivors_negative(signals.any_one, signals.any_zero);
            }
            if !signals.all_same() {
                let keep = plan.keep_bit(step, survivors_negative);
                let mut removed = 0u64;
                for mat in self.mats.iter_mut().flatten() {
                    if mat.selected_count() == 0 {
                        continue;
                    }
                    removed += exclude_mat(mat, pos, keep, self.scalar);
                }
                trace.decided |= 1 << step;
                if keep {
                    trace.keeps |= 1 << step;
                }
                trace.removed[step as usize] = removed;
                running -= removed;
            }
        }
        if resume < stop {
            // Local collapse: synthesize the remaining steps. A lone
            // survivor senses its own stored bit at every column (the
            // column shadow is the row transposed, faults included) and
            // never triggers an exclusion; a dead shard is silent. Both
            // are exactly what physical stepping would record, at the
            // cost of one row read.
            let survivor = self.mats.iter().flatten().find_map(|mat| {
                let slot = mat.first_selected()?;
                Some(mat.read_slot(slot))
            });
            if let Some(raw) = survivor {
                for step in resume..stop {
                    if raw >> plan.position(step) & 1 == 1 {
                        trace.any_one |= 1 << step;
                    } else {
                        trace.any_zero |= 1 << step;
                    }
                    trace.active[step as usize] = 1;
                }
            }
        }
        for mat in &self.mats {
            let first = mat.as_ref().and_then(Mat::first_selected);
            trace.raws.push(match (first, mat) {
                (Some(slot), Some(mat)) => mat.read_slot(slot),
                _ => 0,
            });
            trace.firsts.push(first);
        }
        trace
    }

    /// Re-arms the shard from the membership vector and fast-forwards
    /// the authoritative exclusion prefix (steps below `resume`).
    fn rewind_to(&mut self, membership: &Bitmap, plan: &SearchPlan, prefix: Prefix) {
        let (base, slots, scalar) = (self.base, self.slots_per_mat, self.scalar);
        for (offset, mat) in self.mats.iter_mut().enumerate() {
            if let Some(mat) = mat {
                mat.load_select_window(membership, (base + offset) * slots);
            }
        }
        for step in 0..prefix.resume {
            if prefix.decided >> step & 1 == 0 {
                continue;
            }
            let pos = plan.position(step);
            let keep = prefix.keeps >> step & 1 == 1;
            for mat in self.mats.iter_mut().flatten() {
                if mat.selected_count() == 0 {
                    continue;
                }
                exclude_mat(mat, pos, keep, scalar);
            }
        }
    }
}

/// The authoritative decision prefix shipped with a replay.
#[derive(Clone, Copy)]
struct Prefix {
    decided: u64,
    keeps: u64,
    resume: u16,
}

/// What changed in the session's membership since the previous
/// [`MatPool::descend`] — the key to per-shard trace memoization.
///
/// A shard's speculative trace is a pure function of (stored keys, the
/// membership restricted to the shard, the plan). Batch extraction
/// clears exactly one membership bit per hit, so between consecutive
/// descents only the winner's shard changes: every other shard's trace
/// from the previous round is *still exact* and the controller reuses
/// it without waking the worker at all.
pub(crate) enum Dirty<'a> {
    /// Treat every shard as changed (first descent of a batch, or any
    /// path that rebuilt membership wholesale).
    All,
    /// Only these global slots were cleared from the membership.
    Slots(&'a [u64]),
}

fn sense_mat(mat: &Mat, pos: u16, scalar: bool) -> ColumnSignals {
    #[cfg(any(test, feature = "scalar-oracle"))]
    if scalar {
        return mat.sense_column_scalar(pos);
    }
    let _ = scalar;
    mat.sense_column(pos)
}

fn exclude_mat(mat: &mut Mat, pos: u16, keep: bool, scalar: bool) -> u64 {
    #[cfg(any(test, feature = "scalar-oracle"))]
    if scalar {
        return mat.apply_exclusion_scalar(pos, keep) as u64;
    }
    let _ = scalar;
    mat.apply_exclusion(pos, keep) as u64
}

/// Worker body: block on the request channel until the pool drops it.
/// During a timed session the worker accumulates the wall time it spends
/// *processing* requests; the controller subtracts that from the session
/// duration to get the time the worker sat parked on its channel.
fn worker_loop(rx: Receiver<Request>, tx: Sender<Reply>) {
    let mut shard: Option<Shard> = None;
    let mut session_timed = false;
    let mut busy_ns = 0u64;
    while let Ok(req) = rx.recv() {
        let started = if session_timed {
            Some(Instant::now())
        } else {
            None
        };
        // A send failure means the pool is gone; exit quietly.
        let ok = match req {
            Request::Lease {
                base,
                slots_per_mat,
                scalar,
                timed,
                mats,
            } => {
                assert!(shard.is_none(), "pool protocol desync: double lease");
                session_timed = timed;
                busy_ns = 0;
                shard = Some(Shard {
                    base,
                    slots_per_mat,
                    scalar,
                    mats,
                });
                true
            }
            Request::Sense { epoch, pos } => {
                let s = shard.as_ref().expect("pool protocol desync: no lease");
                let mut signals = ColumnSignals::default();
                let mut active = 0u64;
                for mat in s.mats.iter().flatten() {
                    if mat.selected_count() == 0 {
                        continue;
                    }
                    active += 1;
                    signals.merge(sense_mat(mat, pos, s.scalar));
                }
                tx.send(Reply::Signals {
                    epoch,
                    signals,
                    active,
                })
                .is_ok()
            }
            Request::Exclude { epoch, pos, keep } => {
                let s = shard.as_mut().expect("pool protocol desync: no lease");
                let mut removed = 0u64;
                for mat in s.mats.iter_mut().flatten() {
                    if mat.selected_count() == 0 {
                        continue;
                    }
                    removed += exclude_mat(mat, pos, keep, s.scalar);
                }
                tx.send(Reply::Removed { epoch, removed }).is_ok()
            }
            Request::Descend {
                epoch,
                plan,
                bail_at,
                rearm,
            } => {
                let s = shard.as_mut().expect("pool protocol desync: no lease");
                if let Some(membership) = rearm {
                    for (offset, mat) in s.mats.iter_mut().enumerate() {
                        if let Some(mat) = mat {
                            mat.load_select_window(
                                &membership,
                                (s.base + offset) * s.slots_per_mat,
                            );
                        }
                    }
                    // Drop before replying so the controller's
                    // `Arc::make_mut` after the fold mutates in place.
                    drop(membership);
                }
                let trace = s.speculate(&plan, 0, false, bail_at);
                tx.send(Reply::Trace { epoch, trace }).is_ok()
            }
            Request::ReplaySuffix {
                epoch,
                plan,
                membership,
                decided,
                keeps,
                resume,
                survivors_negative,
            } => {
                let s = shard.as_mut().expect("pool protocol desync: no lease");
                s.rewind_to(
                    &membership,
                    &plan,
                    Prefix {
                        decided,
                        keeps,
                        resume,
                    },
                );
                let trace = s.speculate(&plan, resume, survivors_negative, None);
                tx.send(Reply::Trace { epoch, trace }).is_ok()
            }
            Request::Rearm { membership } => {
                let s = shard.as_mut().expect("pool protocol desync: no lease");
                for (offset, mat) in s.mats.iter_mut().enumerate() {
                    if let Some(mat) = mat {
                        mat.load_select_window(&membership, (s.base + offset) * s.slots_per_mat);
                    }
                }
                // `membership` drops here: the worker keeps no reference,
                // so the controller's `Arc::make_mut` stays in place.
                true
            }
            Request::FirstSelected { epoch } => {
                let s = shard.as_ref().expect("pool protocol desync: no lease");
                let firsts = s
                    .mats
                    .iter()
                    .map(|m| m.as_ref().and_then(Mat::first_selected))
                    .collect();
                tx.send(Reply::Firsts { epoch, firsts }).is_ok()
            }
            Request::ReadSlot { epoch, mat, slot } => {
                let s = shard.as_ref().expect("pool protocol desync: no lease");
                let raw = s.mats[mat]
                    .as_ref()
                    .expect("winning mat is materialized")
                    .read_slot(slot);
                tx.send(Reply::Raw { epoch, raw }).is_ok()
            }
            Request::Unlease { epoch } => {
                let s = shard.take().expect("pool protocol desync: no lease");
                session_timed = false;
                tx.send(Reply::Mats {
                    epoch,
                    mats: s.mats,
                    busy_ns,
                })
                .is_ok()
            }
        };
        if let Some(started) = started {
            busy_ns += u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        }
        if !ok {
            return;
        }
    }
}

struct Worker {
    /// `None` only during shutdown (dropping the sender closes the
    /// channel, which is the worker's exit signal).
    tx: Option<Sender<Request>>,
    rx: Receiver<Reply>,
    handle: Option<JoinHandle<()>>,
}

impl Worker {
    fn send(&self, req: Request) {
        self.tx
            .as_ref()
            .expect("pool is shutting down")
            .send(req)
            .expect("pool worker exited unexpectedly");
    }

    fn recv(&self) -> Reply {
        self.rx.recv().expect("pool worker exited unexpectedly")
    }
}

/// While leased: how the span is sharded across the shard executors
/// (shard lengths in executor order, used to target `ReadSlot` and map
/// dirty slots to their owning shard) and, for timed sessions, when the
/// session opened.
struct LeaseInfo {
    shard_lens: Vec<usize>,
    /// Global mat index of the span's first mat.
    base: usize,
    /// Key slots per mat (global slot → mat arithmetic).
    slots_per_mat: usize,
    started: Option<Instant>,
}

impl LeaseInfo {
    /// Shard executor owning the given global slot.
    fn shard_of_slot(&self, slot: u64) -> usize {
        let mut mat = (slot as usize / self.slots_per_mat).saturating_sub(self.base);
        for (i, &len) in self.shard_lens.iter().enumerate() {
            if mat < len {
                return i;
            }
            mat -= len;
        }
        self.shard_lens.len().saturating_sub(1)
    }
}

/// A persistent pool of mat-shard workers driving one chip's extraction
/// sessions. See the [module docs](self) for the protocol.
///
/// The pool is an execution vehicle only: it holds no chip state between
/// sessions and is deliberately *not* cloned with the chip (a cloned
/// chip lazily builds its own workers on first pooled extraction).
pub struct MatPool {
    /// Spawned worker threads, owning shards `1..N` in shard order.
    workers: Vec<Worker>,
    /// Shard 0, leader-resident: the controller thread participates in
    /// every broadcast instead of blocking in `recv` while an extra
    /// worker wakes. This removes one park/wake cycle per round trip
    /// (decisive when workers timeshare few cores) and overlaps the
    /// leader's shard with the workers' on multicore hosts.
    local: Option<Shard>,
    /// Wall time the leader spent on shard-0 work this session (timed
    /// sessions only; reported as worker 0 at unlease).
    local_busy_ns: u64,
    epoch: u64,
    lease: Option<LeaseInfo>,
    /// Memoized per-shard traces from this session's previous descend
    /// (empty until one completes). Valid per shard while the membership
    /// restricted to that shard is untouched — see [`Dirty`].
    cache: Vec<ShardTrace>,
    /// The plan the cached traces were speculated under.
    cache_plan: Option<SearchPlan>,
    /// Session observer (set by the owning chip before each lease).
    probe: Option<SharedProbe>,
    /// Force-replay test knob: workers bail out of the *initial*
    /// speculation after this many steps, so the fold must exercise the
    /// replay path. Replayed runs always complete.
    force_replay: Option<u16>,
}

/// What a folded descent produced — exactly the shape the chip needs to
/// reconstruct Sequential's counters and probe stream for one key.
pub(crate) struct DescentOutcome {
    /// Column-search steps the global descent executed.
    pub steps_executed: u16,
    /// Active (nonempty-selection) mat senses summed over those steps.
    pub mat_searches: u64,
    /// Rows removed by each exclusion, in step order (one entry per
    /// exclusion the global descent performed).
    pub removed_per_step: Vec<u64>,
    /// First selected slot per mat across the whole span, in span order
    /// (dead shards masked to `None`).
    pub firsts: Vec<Option<u32>>,
    /// Raw bits of each mat's first selected slot (0 where none).
    pub raws: Vec<u64>,
    /// Replay rounds the fold needed (0 on the natural path).
    pub replays: u64,
}

impl std::fmt::Debug for MatPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MatPool")
            .field("workers", &self.workers.len())
            .field("epoch", &self.epoch)
            .field("leased", &self.lease.is_some())
            .finish()
    }
}

/// Runs one leader-resident shard operation, accumulating its wall time
/// into the leader's busy ledger during timed sessions (the clock-free
/// path reads no clocks, matching the workers).
fn local_timed<R>(timed: bool, busy: &mut u64, f: impl FnOnce() -> R) -> R {
    if timed {
        let t = Instant::now();
        let r = f();
        *busy += u64::try_from(t.elapsed().as_nanos()).unwrap_or(u64::MAX);
        r
    } else {
        f()
    }
}

impl MatPool {
    /// Builds a pool of `shards` shard executors (at least one): the
    /// calling thread is the leader and owns shard 0 in place; the
    /// remaining `shards - 1` are long-lived spawned workers.
    pub fn new(shards: usize) -> MatPool {
        let workers = (1..shards.max(1))
            .map(|i| {
                let (req_tx, req_rx) = channel::<Request>();
                let (rep_tx, rep_rx) = channel::<Reply>();
                let handle = std::thread::Builder::new()
                    .name(format!("rime-mat-shard-{i}"))
                    .spawn(move || worker_loop(req_rx, rep_tx))
                    .expect("spawn mat-shard worker");
                Worker {
                    tx: Some(req_tx),
                    rx: rep_rx,
                    handle: Some(handle),
                }
            })
            .collect();
        MatPool {
            workers,
            local: None,
            local_busy_ns: 0,
            epoch: 0,
            lease: None,
            cache: Vec::new(),
            cache_plan: None,
            probe: None,
            force_replay: None,
        }
    }

    /// Number of shard executors (the leader plus the spawned workers).
    pub fn workers(&self) -> usize {
        self.workers.len() + 1
    }

    /// Whether the current session accumulates busy time (probe set at
    /// lease time).
    fn timed(&self) -> bool {
        self.lease.as_ref().is_some_and(|l| l.started.is_some())
    }

    /// Arms (or disarms) the force-replay test knob: initial descents
    /// bail after `limit` steps so the fold must take the replay path.
    /// Drops any memoized traces — they were speculated under the old
    /// setting.
    pub fn set_force_replay(&mut self, limit: Option<u16>) {
        self.force_replay = limit;
        self.cache.clear();
        self.cache_plan = None;
    }

    /// Installs (or removes) the session observer. Timed sessions read
    /// clocks worker-side; with no probe the pool takes the pre-PR-5
    /// clock-free path.
    pub fn set_probe(&mut self, probe: Option<SharedProbe>) {
        self.probe = probe;
    }

    fn next_epoch(&mut self) -> u64 {
        self.epoch += 1;
        self.epoch
    }

    /// Opens a session: shards `span` (the mats of `[first, last]`,
    /// already materialized) contiguously across the shard executors
    /// (leader first). `base` is the global index of the first mat in
    /// the span.
    ///
    /// # Panics
    ///
    /// Panics if a session is already open.
    pub fn lease(
        &mut self,
        base: usize,
        span: Vec<Option<Mat>>,
        slots_per_mat: usize,
        scalar: bool,
    ) {
        let shards = self.workers();
        let chunk = span.len().div_ceil(shards).max(1);
        let mut shard_lens = Vec::with_capacity(shards);
        let mut left = span.len();
        for _ in 0..shards {
            let take = chunk.min(left);
            shard_lens.push(take);
            left -= take;
        }
        self.lease_with_shards(base, span, slots_per_mat, scalar, &shard_lens);
    }

    /// [`MatPool::lease`] with an explicit shard plan: `shard_lens[i]`
    /// mats go to shard executor `i` (0 = the leader), in span order.
    /// Lets tests pin adversarial splits (1-mat shards, maximally
    /// imbalanced shards) that the default contiguous chunking would
    /// never produce.
    ///
    /// # Panics
    ///
    /// Panics if a session is already open, if the plan's length differs
    /// from the shard-executor count, or if the plan does not cover the
    /// span.
    pub fn lease_with_shards(
        &mut self,
        base: usize,
        span: Vec<Option<Mat>>,
        slots_per_mat: usize,
        scalar: bool,
        shard_lens: &[usize],
    ) {
        assert!(self.lease.is_none(), "pool session already open");
        assert_eq!(
            shard_lens.len(),
            self.workers(),
            "shard plan length must match shard-executor count"
        );
        assert_eq!(
            shard_lens.iter().sum::<usize>(),
            span.len(),
            "shard plan must cover the span"
        );
        let mats_total = span.len();
        let mut rest = span;
        let timed = self.probe.is_some();
        self.local = Some(Shard {
            base,
            slots_per_mat,
            scalar,
            mats: rest.drain(..shard_lens[0]).collect(),
        });
        self.local_busy_ns = 0;
        let mut offset = shard_lens[0];
        for (worker, &take) in self.workers.iter().zip(&shard_lens[1..]) {
            let mats: Vec<Option<Mat>> = rest.drain(..take).collect();
            worker.send(Request::Lease {
                base: base + offset,
                slots_per_mat,
                scalar,
                timed,
                mats,
            });
            offset += take;
        }
        let started = if let Some(p) = &self.probe {
            let largest = shard_lens.iter().copied().max().unwrap_or(0);
            let smallest = shard_lens.iter().copied().min().unwrap_or(0);
            p.pool_lease(self.workers(), mats_total, largest, smallest);
            Some(Instant::now())
        } else {
            None
        };
        self.cache.clear();
        self.cache_plan = None;
        self.lease = Some(LeaseInfo {
            shard_lens: shard_lens.to_vec(),
            base,
            slots_per_mat,
            started,
        });
    }

    /// Closes the session and returns the span's mats in order. For timed
    /// sessions, reports each executor's busy time against the session
    /// duration (the difference is time parked on the channel — for the
    /// leader, time spent controller-side instead of on its shard).
    pub fn unlease(&mut self) -> Vec<Option<Mat>> {
        let lease = self.lease.take().expect("no pool session open");
        self.cache.clear();
        self.cache_plan = None;
        let epoch = self.next_epoch();
        for worker in &self.workers {
            worker.send(Request::Unlease { epoch });
        }
        let local = self.local.take().expect("no pool session open");
        let mut span = local.mats;
        let mut busy = Vec::with_capacity(self.workers());
        busy.push(self.local_busy_ns);
        for worker in &self.workers {
            match worker.recv() {
                Reply::Mats {
                    epoch: e,
                    mats,
                    busy_ns,
                } => {
                    assert_eq!(e, epoch, "pool protocol desync");
                    span.extend(mats);
                    busy.push(busy_ns);
                }
                _ => panic!("pool protocol desync: unexpected reply"),
            }
        }
        if let (Some(p), Some(started)) = (&self.probe, lease.started) {
            let session_ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
            for (worker, &busy_ns) in busy.iter().enumerate() {
                p.pool_worker(worker, busy_ns, session_ns);
            }
            p.pool_unlease();
        }
        span
    }

    /// Reports one completed broadcast→fold round trip to the probe.
    fn step_done(&self, started: Option<Instant>) {
        if let (Some(p), Some(t)) = (&self.probe, started) {
            p.pool_step(u64::try_from(t.elapsed().as_nanos()).unwrap_or(u64::MAX));
        }
    }

    /// Starts timing a broadcast→fold round trip (probe installed only).
    fn step_start(&self) -> Option<Instant> {
        self.probe.as_ref().map(|_| Instant::now())
    }

    /// Broadcasts one column-search step; wire-ORs the per-shard signals
    /// and sums active mats in shard order (Fig. 9's fixed reduction).
    /// The leader runs shard 0 inline between the broadcast and the fold.
    pub fn sense(&mut self, pos: u16) -> (ColumnSignals, u64) {
        let started = self.step_start();
        let epoch = self.next_epoch();
        for worker in &self.workers {
            worker.send(Request::Sense { epoch, pos });
        }
        let timed = self.timed();
        let local = self.local.as_ref().expect("no pool session open");
        let (mut global, mut active) = local_timed(timed, &mut self.local_busy_ns, || {
            let mut signals = ColumnSignals::default();
            let mut active = 0u64;
            for mat in local.mats.iter().flatten() {
                if mat.selected_count() == 0 {
                    continue;
                }
                active += 1;
                signals.merge(sense_mat(mat, pos, local.scalar));
            }
            (signals, active)
        });
        for worker in &self.workers {
            match worker.recv() {
                Reply::Signals {
                    epoch: e,
                    signals,
                    active: a,
                } => {
                    assert_eq!(e, epoch, "pool protocol desync");
                    global.merge(signals);
                    active += a;
                }
                _ => panic!("pool protocol desync: unexpected reply"),
            }
        }
        self.step_done(started);
        (global, active)
    }

    /// Broadcasts one exclusion step; returns total rows deselected,
    /// summed in shard order (leader's shard first).
    pub fn exclude(&mut self, pos: u16, keep: bool) -> u64 {
        let started = self.step_start();
        let epoch = self.next_epoch();
        for worker in &self.workers {
            worker.send(Request::Exclude { epoch, pos, keep });
        }
        let timed = self.timed();
        let local = self.local.as_mut().expect("no pool session open");
        let mut removed = local_timed(timed, &mut self.local_busy_ns, || {
            let mut removed = 0u64;
            for mat in local.mats.iter_mut().flatten() {
                if mat.selected_count() == 0 {
                    continue;
                }
                removed += exclude_mat(mat, pos, keep, local.scalar);
            }
            removed
        });
        for worker in &self.workers {
            match worker.recv() {
                Reply::Removed {
                    epoch: e,
                    removed: r,
                } => {
                    assert_eq!(e, epoch, "pool protocol desync");
                    removed += r;
                }
                _ => panic!("pool protocol desync: unexpected reply"),
            }
        }
        self.step_done(started);
        removed
    }

    /// Runs one whole bit-serial descent in a single broadcast→fold
    /// round trip: every worker speculates its shard's descent locally,
    /// and the controller folds the recorded traces in worker order into
    /// the exact global decision sequence (see the module docs for why
    /// the fold is exact and when it replays).
    ///
    /// `rearm`, when set, re-latches every *stale* shard's select
    /// windows from the shared membership vector before speculating —
    /// the fused form of [`MatPool::rearm`] + descend (one wake cycle
    /// per worker instead of two).
    ///
    /// `dirty` names the membership slots cleared since the previous
    /// descend of this session. Shards untouched by them reuse their
    /// memoized trace from that descend — a pure-function cache hit, so
    /// the fold's inputs (and therefore hits and every counter) are
    /// bit-identical to re-speculating — and their workers are not woken
    /// at all. Memoization requires the shared-membership path (`rearm`
    /// set); with `rearm == None` the select state is host-loaded and
    /// every shard runs fresh.
    ///
    /// `membership` lazily materializes the span's select membership
    /// (global slot indexing) — it is only invoked if a replay must
    /// re-arm a shard, which never happens on the natural path.
    pub(crate) fn descend(
        &mut self,
        plan: &SearchPlan,
        rearm: Option<&Arc<Bitmap>>,
        dirty: Dirty<'_>,
        membership: &mut dyn FnMut() -> Arc<Bitmap>,
    ) -> DescentOutcome {
        let started = self.step_start();
        let shards = self.workers();
        let cached = rearm.is_some()
            && self.cache.len() == shards
            && self.cache_plan.as_ref() == Some(plan)
            && matches!(dirty, Dirty::Slots(_));
        let stale: Vec<bool> = if cached {
            let lease = self.lease.as_ref().expect("no pool session open");
            // Partial traces (bailed under the force-replay knob, or
            // replayed suffixes) never stand in for a whole descent.
            let mut stale: Vec<bool> = self
                .cache
                .iter()
                .map(|t| !t.is_full(plan.steps()))
                .collect();
            if let Dirty::Slots(slots) = dirty {
                for &slot in slots {
                    stale[lease.shard_of_slot(slot)] = true;
                }
            }
            stale
        } else {
            vec![true; shards]
        };
        let epoch = self.next_epoch();
        let bail_at = self.force_replay;
        for (w, worker) in self.workers.iter().enumerate() {
            if stale[w + 1] {
                worker.send(Request::Descend {
                    epoch,
                    plan: *plan,
                    bail_at,
                    rearm: rearm.map(Arc::clone),
                });
            }
        }
        // Leader runs shard 0 while the workers speculate theirs: on one
        // core this removes a park/wake cycle, on many it overlaps.
        let mut traces = std::mem::take(&mut self.cache);
        if !cached {
            traces.clear();
        }
        if stale[0] {
            let timed = self.timed();
            let local = self.local.as_mut().expect("no pool session open");
            let local_trace = local_timed(timed, &mut self.local_busy_ns, || {
                if let Some(membership) = rearm {
                    for (offset, mat) in local.mats.iter_mut().enumerate() {
                        if let Some(mat) = mat {
                            mat.load_select_window(
                                membership,
                                (local.base + offset) * local.slots_per_mat,
                            );
                        }
                    }
                }
                local.speculate(plan, 0, false, bail_at)
            });
            if cached {
                traces[0] = local_trace;
            } else {
                traces.push(local_trace);
            }
        }
        for (w, worker) in self.workers.iter().enumerate() {
            if !stale[w + 1] {
                continue;
            }
            match worker.recv() {
                Reply::Trace { epoch: e, trace } => {
                    assert_eq!(e, epoch, "pool protocol desync");
                    if cached {
                        traces[w + 1] = trace;
                    } else {
                        traces.push(trace);
                    }
                }
                _ => panic!("pool protocol desync: unexpected reply"),
            }
        }
        let outcome = self.fold(plan, &mut traces, membership);
        self.cache = traces;
        self.cache_plan = Some(*plan);
        self.step_done(started);
        outcome
    }

    /// Folds per-shard traces into the global descent, replaying shards
    /// whose traces cannot serve the fold (bailed early or divergent).
    fn fold(
        &mut self,
        plan: &SearchPlan,
        traces: &mut [ShardTrace],
        membership: &mut dyn FnMut() -> Arc<Bitmap>,
    ) -> DescentOutcome {
        let steps = plan.steps();
        let shards = traces.len();
        let mut alive: Vec<bool> = traces.iter().map(|t| t.initial_selected > 0).collect();
        let mut remaining: Vec<u64> = traces.iter().map(|t| t.initial_selected).collect();
        let mut selected: u64 = remaining.iter().sum();
        let mut survivors_negative = false;
        let mut decided = 0u64;
        let mut keeps = 0u64;
        let mut cached: Option<Arc<Bitmap>> = None;
        let mut outcome = DescentOutcome {
            steps_executed: 0,
            mat_searches: 0,
            removed_per_step: Vec::new(),
            firsts: Vec::new(),
            raws: Vec::new(),
            replays: 0,
        };
        let mut step: u16 = 0;
        while step < steps {
            if selected <= 1 {
                break;
            }
            // Coverage: a bailed shard's trace ends before the fold point.
            let lagging: Vec<usize> = (0..shards)
                .filter(|&i| alive[i] && traces[i].ran <= step)
                .collect();
            if !lagging.is_empty() {
                outcome.replays += 1;
                assert!(
                    outcome.replays <= 2 * steps as u64 + 2,
                    "pool replay failed to converge"
                );
                let prefix = Prefix {
                    decided,
                    keeps,
                    resume: step,
                };
                self.replay(
                    plan,
                    traces,
                    &lagging,
                    prefix,
                    survivors_negative,
                    membership,
                    &mut cached,
                    &remaining,
                );
                continue;
            }
            // Tentative wired-OR fold at this step (committed only once
            // no shard needs a replay).
            let bit = 1u64 << step;
            let mut global = ColumnSignals::default();
            let mut active = 0u64;
            for i in 0..shards {
                if !alive[i] {
                    continue;
                }
                global.any_one |= traces[i].any_one & bit != 0;
                global.any_zero |= traces[i].any_zero & bit != 0;
                active += traces[i].active[step as usize];
            }
            let sv_next = if plan.is_sign_step(step) {
                plan.survivors_negative(global.any_one, global.any_zero)
            } else {
                survivors_negative
            };
            let excluded = !global.all_same();
            let mut keep = false;
            let mut removed = 0u64;
            let mut deaths: Vec<usize> = Vec::new();
            if excluded {
                keep = plan.keep_bit(step, sv_next);
                let mut divergent: Vec<usize> = Vec::new();
                for i in 0..shards {
                    if !alive[i] {
                        continue;
                    }
                    let local_one = traces[i].any_one & bit != 0;
                    let local_zero = traces[i].any_zero & bit != 0;
                    if local_one && local_zero {
                        // Locally mixed: the shard speculated an
                        // exclusion; it must match the global decision.
                        let agreed =
                            traces[i].decided & bit != 0 && (traces[i].keeps & bit != 0) == keep;
                        if agreed {
                            removed += traces[i].removed[step as usize];
                        } else {
                            divergent.push(i);
                        }
                    } else if local_one || local_zero {
                        // Uniform: nothing removed locally. If uniform
                        // in the discarded bit, the whole shard dies.
                        if local_one != keep {
                            deaths.push(i);
                            removed += remaining[i];
                        }
                    } else {
                        // An alive shard with a silent column is out of
                        // sync with the tracked remaining count.
                        divergent.push(i);
                    }
                }
                if !divergent.is_empty() {
                    outcome.replays += 1;
                    assert!(
                        outcome.replays <= 2 * steps as u64 + 2,
                        "pool replay failed to converge"
                    );
                    let prefix = Prefix {
                        decided,
                        keeps,
                        resume: step,
                    };
                    self.replay(
                        plan,
                        traces,
                        &divergent,
                        prefix,
                        survivors_negative,
                        membership,
                        &mut cached,
                        &remaining,
                    );
                    continue;
                }
            }
            // Commit the step.
            outcome.steps_executed += 1;
            outcome.mat_searches += active;
            survivors_negative = sv_next;
            if excluded {
                decided |= bit;
                if keep {
                    keeps |= bit;
                }
                outcome.removed_per_step.push(removed);
                selected -= removed;
                for &i in &deaths {
                    alive[i] = false;
                }
                for i in 0..shards {
                    if alive[i] && traces[i].decided & bit != 0 {
                        remaining[i] -= traces[i].removed[step as usize];
                    }
                }
            }
            step += 1;
        }
        // Overlay per-mat firsts/raws in span order, masking dead shards
        // (their local select state is speculative garbage).
        for (trace, &ok) in traces.iter().zip(&alive) {
            if ok {
                outcome.firsts.extend_from_slice(&trace.firsts);
                outcome.raws.extend_from_slice(&trace.raws);
            } else {
                let (nf, nr) = (outcome.firsts.len(), outcome.raws.len());
                outcome.firsts.resize(nf + trace.firsts.len(), None);
                outcome.raws.resize(nr + trace.raws.len(), 0);
            }
        }
        outcome
    }

    /// Replays the targeted shards from `prefix.resume`, substituting
    /// their traces.
    #[allow(clippy::too_many_arguments)]
    fn replay(
        &mut self,
        plan: &SearchPlan,
        traces: &mut [ShardTrace],
        targets: &[usize],
        prefix: Prefix,
        survivors_negative: bool,
        membership: &mut dyn FnMut() -> Arc<Bitmap>,
        cached: &mut Option<Arc<Bitmap>>,
        remaining: &[u64],
    ) {
        let membership = Arc::clone(cached.get_or_insert_with(&mut *membership));
        let epoch = self.next_epoch();
        for &i in targets {
            if i == 0 {
                continue;
            }
            self.workers[i - 1].send(Request::ReplaySuffix {
                epoch,
                plan: *plan,
                membership: Arc::clone(&membership),
                decided: prefix.decided,
                keeps: prefix.keeps,
                resume: prefix.resume,
                survivors_negative,
            });
        }
        for &i in targets {
            let trace = if i == 0 {
                // Leader replays its own shard (targets are ascending,
                // so this overlaps with the workers' replays).
                let timed = self.timed();
                let local = self.local.as_mut().expect("no pool session open");
                local_timed(timed, &mut self.local_busy_ns, || {
                    local.rewind_to(&membership, plan, prefix);
                    local.speculate(plan, prefix.resume, survivors_negative, None)
                })
            } else {
                match self.workers[i - 1].recv() {
                    Reply::Trace { epoch: e, trace } => {
                        assert_eq!(e, epoch, "pool protocol desync");
                        trace
                    }
                    _ => panic!("pool protocol desync: unexpected reply"),
                }
            };
            debug_assert_eq!(
                trace.initial_selected, remaining[i],
                "replayed shard disagrees with tracked remaining"
            );
            traces[i] = trace;
        }
    }

    /// Broadcasts a select-window rearm from the shared membership
    /// vector. Fire-and-forget worker-side (the per-worker channels are
    /// FIFO, so the next reply-bearing request is its barrier); the
    /// leader re-latches shard 0 immediately.
    pub fn rearm(&mut self, membership: &Arc<Bitmap>) {
        for worker in &self.workers {
            worker.send(Request::Rearm {
                membership: Arc::clone(membership),
            });
        }
        let timed = self.timed();
        let local = self.local.as_mut().expect("no pool session open");
        local_timed(timed, &mut self.local_busy_ns, || {
            for (offset, mat) in local.mats.iter_mut().enumerate() {
                if let Some(mat) = mat {
                    mat.load_select_window(membership, (local.base + offset) * local.slots_per_mat);
                }
            }
        });
    }

    /// First selected row per mat across the whole span, in mat order
    /// (leader's shard first).
    pub fn first_selected(&mut self) -> Vec<Option<u32>> {
        let started = self.step_start();
        let epoch = self.next_epoch();
        for worker in &self.workers {
            worker.send(Request::FirstSelected { epoch });
        }
        let timed = self.timed();
        let local = self.local.as_ref().expect("no pool session open");
        let mut firsts: Vec<Option<u32>> = local_timed(timed, &mut self.local_busy_ns, || {
            local
                .mats
                .iter()
                .map(|m| m.as_ref().and_then(Mat::first_selected))
                .collect()
        });
        for worker in &self.workers {
            match worker.recv() {
                Reply::Firsts {
                    epoch: e,
                    firsts: f,
                } => {
                    assert_eq!(e, epoch, "pool protocol desync");
                    firsts.extend(f);
                }
                _ => panic!("pool protocol desync: unexpected reply"),
            }
        }
        self.step_done(started);
        firsts
    }

    /// Reads raw bits of row `slot` in the span's `mat`-th mat
    /// (0 = first mat of the leased span).
    pub fn read_slot(&mut self, mat: usize, slot: u32) -> u64 {
        let started = self.step_start();
        let lease = self.lease.as_ref().expect("no pool session open");
        // Locate the shard executor owning span-local mat index `mat`.
        let mut index = mat;
        let mut owner = 0usize;
        for (w, &len) in lease.shard_lens.iter().enumerate() {
            if index < len {
                owner = w;
                break;
            }
            index -= len;
        }
        let raw = if owner == 0 {
            let timed = self.timed();
            let local = self.local.as_ref().expect("no pool session open");
            local_timed(timed, &mut self.local_busy_ns, || {
                local.mats[index]
                    .as_ref()
                    .expect("winning mat is materialized")
                    .read_slot(slot)
            })
        } else {
            let epoch = self.next_epoch();
            let worker = &self.workers[owner - 1];
            worker.send(Request::ReadSlot {
                epoch,
                mat: index,
                slot,
            });
            match worker.recv() {
                Reply::Raw { epoch: e, raw } => {
                    assert_eq!(e, epoch, "pool protocol desync");
                    raw
                }
                _ => panic!("pool protocol desync: unexpected reply"),
            }
        };
        self.step_done(started);
        raw
    }
}

/// One-shot measured costs of the pool's control plane vs the bit-sliced
/// data plane, used to place the [`crate::ParallelPolicy::Auto`]
/// crossover. Measured once per process (see [`pool_calibration`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolCalibration {
    /// Best-case broadcast→fold round-trip latency through a worker
    /// channel pair, in nanoseconds (≥ 1).
    pub round_trip_ns: u64,
    /// Cost of one 64-bit word of select-vector AND work, in
    /// picoseconds (≥ 1).
    pub word_picos: u64,
}

/// Measures (once per process) the pool round-trip latency and the
/// per-word cost of the bit-sliced kernels. Both are wall-clock
/// measurements and therefore nondeterministic; everything derived from
/// them (the Auto crossover) only affects *scheduling*, which the
/// determinism contract already proves observationally invisible.
pub fn pool_calibration() -> PoolCalibration {
    static CAL: OnceLock<PoolCalibration> = OnceLock::new();
    *CAL.get_or_init(|| {
        // Control plane: minimum of 64 sense round trips through a tiny
        // two-shard pool (leader + one spawned worker — the smallest
        // shape that pays a real channel+wake cost; min, not mean, so
        // scheduler noise is excluded).
        let mut pool = MatPool::new(2);
        let span = vec![Some(Mat::new(1, 1)), Some(Mat::new(1, 1))];
        pool.lease(0, span, 1, false);
        let mut best = u64::MAX;
        for _ in 0..64 {
            let t = Instant::now();
            std::hint::black_box(pool.sense(0));
            best = best.min(u64::try_from(t.elapsed().as_nanos()).unwrap_or(u64::MAX));
        }
        pool.unlease();
        // Data plane: words/sec of the exclusion kernel over a select
        // vector big enough to dwarf loop overhead.
        const BITS: usize = 1 << 16;
        const REPS: u64 = 64;
        let mut a = Bitmap::ones(BITS);
        let b = Bitmap::ones(BITS);
        let t = Instant::now();
        for _ in 0..REPS {
            std::hint::black_box(&mut a).and_assign(std::hint::black_box(&b));
        }
        let total_ns = u64::try_from(t.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let words = REPS * (BITS as u64 / 64);
        PoolCalibration {
            round_trip_ns: best.max(1),
            word_picos: (total_ns.saturating_mul(1000) / words).max(1),
        }
    })
}

impl Drop for MatPool {
    fn drop(&mut self) {
        for worker in &mut self.workers {
            // Closing the request channel is the exit signal.
            worker.tx.take();
        }
        for worker in &mut self.workers {
            if let Some(handle) = worker.handle.take() {
                let _ = handle.join();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mat_with(rows: u32, keys: &[u64]) -> Mat {
        let mut mat = Mat::new(1, rows);
        for (slot, &raw) in keys.iter().enumerate() {
            mat.write_slot(slot as u32, raw);
        }
        mat
    }

    fn select_all(mat: &mut Mat, slots: usize, base: usize, capacity: usize) {
        let mut membership = Bitmap::zeros(capacity);
        membership.set_range(base, base + slots);
        mat.load_select_window(&membership, base);
    }

    #[test]
    fn lease_roundtrip_preserves_mats() {
        let mut pool = MatPool::new(3);
        let span: Vec<Option<Mat>> = vec![
            Some(mat_with(8, &[1, 2, 3])),
            None,
            Some(mat_with(8, &[9])),
            Some(mat_with(8, &[4, 5])),
        ];
        pool.lease(2, span, 8, false);
        let back = pool.unlease();
        assert_eq!(back.len(), 4);
        assert!(back[1].is_none());
        assert_eq!(back[0].as_ref().unwrap().read_slot(2), 3);
        assert_eq!(back[2].as_ref().unwrap().read_slot(0), 9);
        assert_eq!(back[3].as_ref().unwrap().read_slot(1), 5);
    }

    #[test]
    fn sense_matches_sequential_walk_at_any_worker_count() {
        let keys = [0b1010u64, 0b0110, 0b0001, 0b1111, 0b0000];
        for workers in 1..=4 {
            let mut mats: Vec<Option<Mat>> = (0..3)
                .map(|i| {
                    let mut m = mat_with(8, &keys[i..i + 2]);
                    select_all(&mut m, 2, i * 8, 64);
                    Some(m)
                })
                .collect();
            // Sequential reference.
            let mut want = ColumnSignals::default();
            let mut want_active = 0u64;
            for mat in mats.iter().flatten() {
                if mat.selected_count() > 0 {
                    want_active += 1;
                    want.merge(mat.sense_column(1));
                }
            }
            // Pool under test.
            let mut pool = MatPool::new(workers);
            pool.lease(0, std::mem::take(&mut mats), 8, false);
            let (got, active) = pool.sense(1);
            assert_eq!((got.any_one, got.any_zero), (want.any_one, want.any_zero));
            assert_eq!(active, want_active);
            pool.unlease();
        }
    }

    #[test]
    fn read_slot_targets_the_owning_shard() {
        let mut pool = MatPool::new(2);
        let span: Vec<Option<Mat>> = (0..5)
            .map(|i| Some(mat_with(8, &[i as u64 * 100 + 7])))
            .collect();
        pool.lease(0, span, 8, false);
        for mat in 0..5 {
            assert_eq!(pool.read_slot(mat, 0), mat as u64 * 100 + 7);
        }
        pool.unlease();
    }

    #[test]
    fn descend_is_worker_count_invariant_and_replay_safe() {
        use crate::encoding::KeyFormat;
        use crate::plan::Direction;

        let plan = SearchPlan::new(KeyFormat::UNSIGNED64, Direction::Min);
        let keys: Vec<u64> = (0..40u64)
            .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .collect();
        let slots = 8usize;
        let build_span = || -> Vec<Option<Mat>> {
            (0..5)
                .map(|m| {
                    let mut mat = mat_with(slots as u32, &keys[m * slots..(m + 1) * slots]);
                    select_all(&mut mat, slots, m * slots, 40);
                    Some(mat)
                })
                .collect()
        };
        let run = |workers: usize, force: Option<u16>| {
            let mut pool = MatPool::new(workers);
            pool.set_force_replay(force);
            pool.lease(0, build_span(), slots, false);
            let mut membership = || {
                let mut b = Bitmap::zeros(40);
                b.set_range(0, 40);
                Arc::new(b)
            };
            let out = pool.descend(&plan, None, Dirty::All, &mut membership);
            pool.unlease();
            out
        };
        let want = run(1, None);
        assert_eq!(want.replays, 0, "natural path must never replay");
        for workers in [1usize, 2, 3, 5] {
            for force in [None, Some(0u16), Some(1), Some(17), Some(63)] {
                let got = run(workers, force);
                let ctx = format!("workers {workers}, force {force:?}");
                assert_eq!(got.steps_executed, want.steps_executed, "{ctx}");
                assert_eq!(got.mat_searches, want.mat_searches, "{ctx}");
                assert_eq!(got.removed_per_step, want.removed_per_step, "{ctx}");
                assert_eq!(got.firsts, want.firsts, "{ctx}");
                assert_eq!(got.raws, want.raws, "{ctx}");
                if let Some(bail) = force {
                    if bail < got.steps_executed {
                        assert!(got.replays > 0, "{ctx}: bail must force a replay");
                    }
                } else {
                    assert_eq!(got.replays, 0, "{ctx}: natural path must never replay");
                }
            }
        }
    }

    #[test]
    fn memoized_descents_match_fresh_speculation() {
        use crate::encoding::KeyFormat;
        use crate::plan::Direction;

        let plan = SearchPlan::new(KeyFormat::UNSIGNED64, Direction::Min);
        let keys: Vec<u64> = (0..40u64)
            .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .collect();
        let slots = 8usize;
        let build_span = || -> Vec<Option<Mat>> {
            (0..5)
                .map(|m| Some(mat_with(slots as u32, &keys[m * slots..(m + 1) * slots])))
                .collect()
        };
        // Extract every key twice: once letting consecutive descents
        // reuse memoized shard traces (only the winner's shard dirty),
        // once forcing every shard to re-speculate each round. The hit
        // streams and counters must be bit-identical — memoization is a
        // pure-function cache, not an approximation.
        type DescentRecord = (Vec<Option<u32>>, Vec<u64>, u16, u64);
        let run = |use_dirty_slots: bool| -> Vec<DescentRecord> {
            let mut pool = MatPool::new(3);
            pool.lease(0, build_span(), slots, false);
            let mut membership = Arc::new({
                let mut b = Bitmap::zeros(40);
                b.set_range(0, 40);
                b
            });
            let mut extracted = Vec::new();
            let mut dirty_slot: Option<u64> = None;
            for _ in 0..40 {
                let rearm = Arc::clone(&membership);
                let mut membership_fn = || Arc::clone(&membership);
                let dirty = match (&dirty_slot, use_dirty_slots) {
                    (Some(slot), true) => Dirty::Slots(std::slice::from_ref(slot)),
                    _ => Dirty::All,
                };
                let out = pool.descend(&plan, Some(&rearm), dirty, &mut membership_fn);
                drop(rearm);
                // Winner = first selected slot of the lowest-index mat.
                let (mat, first) = out
                    .firsts
                    .iter()
                    .enumerate()
                    .find_map(|(m, f)| f.map(|s| (m, s)))
                    .expect("non-empty selection yields a winner");
                let slot = (mat * slots) as u64 + u64::from(first);
                extracted.push((
                    out.firsts.clone(),
                    out.raws.clone(),
                    out.steps_executed,
                    out.mat_searches,
                ));
                Arc::make_mut(&mut membership).set(slot as usize, false);
                dirty_slot = Some(slot);
            }
            pool.unlease();
            extracted
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn lease_with_shards_honors_adversarial_splits() {
        for shard_lens in [vec![1usize, 1, 3], vec![5, 0, 0], vec![0, 0, 5]] {
            let mut pool = MatPool::new(3);
            let span: Vec<Option<Mat>> = (0..5)
                .map(|i| Some(mat_with(8, &[i as u64 * 100 + 7])))
                .collect();
            pool.lease_with_shards(0, span, 8, false, &shard_lens);
            for mat in 0..5 {
                assert_eq!(
                    pool.read_slot(mat, 0),
                    mat as u64 * 100 + 7,
                    "shards {shard_lens:?}"
                );
            }
            let back = pool.unlease();
            assert_eq!(back.len(), 5);
        }
    }

    #[test]
    fn calibration_is_positive_and_stable() {
        let a = pool_calibration();
        let b = pool_calibration();
        assert!(a.round_trip_ns >= 1 && a.word_picos >= 1);
        assert_eq!(a, b, "per-process calibration must be cached");
    }

    #[test]
    fn rearm_updates_selection_through_shared_bitmap() {
        let mut pool = MatPool::new(2);
        let span: Vec<Option<Mat>> = (0..2).map(|_| Some(mat_with(8, &[1, 2, 3]))).collect();
        pool.lease(0, span, 8, false);
        let mut membership = Arc::new({
            let mut b = Bitmap::zeros(16);
            b.set_range(0, 3);
            b.set_range(8, 11);
            b
        });
        pool.rearm(&membership);
        assert_eq!(pool.first_selected(), vec![Some(0), Some(0)]);
        Arc::make_mut(&mut membership).set(0, false);
        pool.rearm(&membership);
        assert_eq!(pool.first_selected(), vec![Some(1), Some(0)]);
        pool.unlease();
    }
}
