//! Error type for the memristive substrate.

use std::error::Error as StdError;
use std::fmt;

/// Errors reported by the memristive chip model.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// A key slot address exceeded the chip's capacity.
    AddressOutOfRange {
        /// Offending slot address.
        addr: u64,
        /// Chip capacity in key slots.
        capacity: u64,
    },
    /// A key range was empty or inverted (`begin >= end`).
    EmptyRange {
        /// Range begin (inclusive).
        begin: u64,
        /// Range end (exclusive).
        end: u64,
    },
    /// A ranking operation was issued before `init_range`.
    NotInitialized,
    /// The requested key width exceeds what one array row can hold.
    KeyTooWide {
        /// Requested key width in bits.
        bits: u16,
        /// Maximum supported width (array columns).
        max: u16,
    },
    /// Stored keys use a different format than the operation requested.
    FormatMismatch {
        /// Format recorded at `store_keys`/`init_range` time.
        stored: &'static str,
        /// Format the operation asked for.
        requested: &'static str,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::AddressOutOfRange { addr, capacity } => {
                write!(f, "slot address {addr} out of range (capacity {capacity})")
            }
            Error::EmptyRange { begin, end } => {
                write!(f, "empty or inverted key range [{begin}, {end})")
            }
            Error::NotInitialized => {
                write!(f, "ranking operation issued before init_range")
            }
            Error::KeyTooWide { bits, max } => {
                write!(f, "key width {bits} exceeds array row width {max}")
            }
            Error::FormatMismatch { stored, requested } => {
                write!(
                    f,
                    "stored key format {stored} does not match requested {requested}"
                )
            }
        }
    }
}

impl StdError for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let err = Error::AddressOutOfRange {
            addr: 9,
            capacity: 8,
        };
        assert!(err.to_string().contains('9'));
        let err = Error::EmptyRange { begin: 5, end: 5 };
        assert!(err.to_string().contains("empty"));
        assert!(Error::NotInitialized.to_string().contains("init_range"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Error>();
    }
}
