//! Built-in self test for RIME chips.
//!
//! Memristive cells wear out (§VII-C) and worn cells freeze in one
//! resistance state, silently corrupting ranking results (a stuck bit
//! changes a key's value, not the algorithm's termination). Production
//! memories ship march tests for exactly this failure mode; this module
//! provides one for the RIME chip model plus a functional check of the
//! ranking datapath:
//!
//! 1. **March element W0/R0** — write all-zeros, read back;
//! 2. **March element W1/R1** — write all-ones, read back;
//! 3. **Checkerboard** — alternating `0xAA…`/`0x55…` patterns per slot;
//! 4. **Ranking check** — store a known sequence, extract it, and verify
//!    the ordered stream (exercises column search, exclusion, H-tree).
//!
//! The test is destructive: tested slots end up holding the ranking-check
//! pattern. Run it before `rime_malloc` hands the range to applications.

use crate::chip::Chip;
use crate::encoding::KeyFormat;
use crate::error::Error;
use crate::plan::Direction;

/// Location of a detected defect.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSite {
    /// Key slot with at least one bad cell.
    pub slot: u64,
    /// Bit position that failed pattern readback, when attributable.
    pub bit: Option<u16>,
}

/// Outcome of a self-test run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SelfTestReport {
    /// Slots exercised.
    pub slots_tested: u64,
    /// Detected defects, ascending by slot.
    pub faults: Vec<FaultSite>,
    /// Whether the ranking datapath produced a correctly ordered stream.
    pub ranking_ok: bool,
}

impl SelfTestReport {
    /// Whether the range is defect-free and the datapath is healthy.
    pub fn passed(&self) -> bool {
        self.faults.is_empty() && self.ranking_ok
    }
}

fn record(faults: &mut Vec<FaultSite>, slot: u64, observed: u64, expected: u64) {
    let diff = observed ^ expected;
    if diff != 0 {
        record_site(faults, slot, Some(diff.trailing_zeros() as u16));
    }
}

fn record_site(faults: &mut Vec<FaultSite>, slot: u64, bit: Option<u16>) {
    if !faults.iter().any(|f| f.slot == slot) {
        faults.push(FaultSite { slot, bit });
    }
}

/// Runs the march + ranking self test over `[begin, end)`.
///
/// # Errors
///
/// Propagates address errors from the chip.
pub fn march_test(chip: &mut Chip, begin: u64, end: u64) -> Result<SelfTestReport, Error> {
    if begin >= end {
        return Err(Error::EmptyRange { begin, end });
    }
    let mut faults = Vec::new();

    // March elements: each pattern written to every slot, then verified.
    for pattern in [0u64, u64::MAX, 0xAAAA_AAAA_AAAA_AAAA, 0x5555_5555_5555_5555] {
        for slot in begin..end {
            chip.store_keys(slot, &[pattern], KeyFormat::UNSIGNED64)?;
        }
        for slot in begin..end {
            let got = chip.read_key(slot)?;
            record(&mut faults, slot, got, pattern);
        }
    }

    // Ranking datapath check: store a descending ramp, stream it back.
    let n = end - begin;
    for (offset, slot) in (begin..end).enumerate() {
        chip.store_keys(slot, &[n - offset as u64], KeyFormat::UNSIGNED64)?;
    }
    chip.init_range(begin, end, KeyFormat::UNSIGNED64)?;
    let march_clean = faults.is_empty();
    let mut ranking_ok = true;
    let mut expected = 1u64;
    while let Some(hit) = chip.extract(Direction::Min)? {
        if hit.raw_bits != expected {
            ranking_ok = false;
            // Attribute sites only when the march found nothing: under
            // cell faults every later extraction cascades, so the march
            // report is the authoritative defect list.
            if march_clean {
                record_site(&mut faults, hit.slot, None);
            }
        }
        expected += 1;
    }
    if expected != n + 1 {
        ranking_ok = false;
    }

    faults.sort_by_key(|f| f.slot);
    Ok(SelfTestReport {
        slots_tested: n,
        faults,
        ranking_ok,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::ChipGeometry;

    #[test]
    fn clean_chip_passes() {
        let mut chip = Chip::new(ChipGeometry::tiny());
        let report = march_test(&mut chip, 0, 32).unwrap();
        assert!(report.passed());
        assert_eq!(report.slots_tested, 32);
        assert!(report.faults.is_empty());
        assert!(report.ranking_ok);
    }

    #[test]
    fn stuck_high_cell_is_located() {
        let mut chip = Chip::new(ChipGeometry::tiny());
        chip.inject_stuck_cell(5, 17, true).unwrap();
        let report = march_test(&mut chip, 0, 32).unwrap();
        assert!(!report.passed());
        assert!(report
            .faults
            .iter()
            .any(|f| f.slot == 5 && f.bit == Some(17)));
    }

    #[test]
    fn stuck_low_cell_is_located() {
        let mut chip = Chip::new(ChipGeometry::tiny());
        chip.inject_stuck_cell(12, 0, false).unwrap();
        let report = march_test(&mut chip, 0, 32).unwrap();
        assert!(report
            .faults
            .iter()
            .any(|f| f.slot == 12 && f.bit == Some(0)));
    }

    #[test]
    fn multiple_faults_all_reported_once() {
        let mut chip = Chip::new(ChipGeometry::tiny());
        chip.inject_stuck_cell(1, 3, true).unwrap();
        chip.inject_stuck_cell(1, 9, false).unwrap();
        chip.inject_stuck_cell(30, 63, true).unwrap();
        let report = march_test(&mut chip, 0, 32).unwrap();
        let slots: Vec<u64> = report.faults.iter().map(|f| f.slot).collect();
        assert_eq!(slots, vec![1, 30]);
    }

    #[test]
    fn faults_outside_the_range_are_not_flagged() {
        let mut chip = Chip::new(ChipGeometry::tiny());
        chip.inject_stuck_cell(40, 2, true).unwrap();
        let report = march_test(&mut chip, 0, 32).unwrap();
        assert!(report.passed());
    }

    #[test]
    fn empty_range_rejected() {
        let mut chip = Chip::new(ChipGeometry::tiny());
        assert!(march_test(&mut chip, 3, 3).is_err());
    }
}
