//! Typed event counters — the performance layer's source of truth.
//!
//! Every functional operation on the chip model increments these counters;
//! [`crate::timing::ArrayTiming`] and the higher-level performance models in
//! `rime-core` convert them into time and energy. Keeping the counters on
//! the functional path guarantees the performance numbers describe exactly
//! the work the bit-accurate model performed.

use std::ops::{Add, AddAssign, Sub, SubAssign};

/// Operation counts accumulated by a chip (or aggregated across chips).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpCounters {
    /// Global column-search steps (one per bit position examined).
    pub column_search_steps: u64,
    /// Per-mat column searches (steps × active mats) — energy scales with
    /// this, latency with `column_search_steps`.
    pub mat_column_searches: u64,
    /// Row reads (result readout and normal-mode loads).
    pub row_reads: u64,
    /// Row writes (stores; the only wear-inducing operation, §VII-C).
    pub row_writes: u64,
    /// Select-vector loads (match vector latched into select latches).
    pub select_loads: u64,
    /// H-tree reduction traversals (one per index computation).
    pub htree_traversals: u64,
    /// Select-vector initializations (`rime_init`-driven range walks).
    pub init_ops: u64,
    /// Completed min/max extractions.
    pub extractions: u64,
}

impl OpCounters {
    /// A zeroed counter set.
    pub fn new() -> OpCounters {
        OpCounters::default()
    }

    /// Resets all counters to zero.
    pub fn reset(&mut self) {
        *self = OpCounters::default();
    }

    /// Counter-wise difference `self - earlier`, saturating at zero.
    ///
    /// Used by the command executor to turn two snapshots of a chip's
    /// monotonically increasing counters into the per-command delta it
    /// publishes to telemetry sinks. Saturation makes the helper total:
    /// a reset between snapshots yields zeros instead of wrapping.
    pub fn delta_since(&self, earlier: &OpCounters) -> OpCounters {
        OpCounters {
            column_search_steps: self
                .column_search_steps
                .saturating_sub(earlier.column_search_steps),
            mat_column_searches: self
                .mat_column_searches
                .saturating_sub(earlier.mat_column_searches),
            row_reads: self.row_reads.saturating_sub(earlier.row_reads),
            row_writes: self.row_writes.saturating_sub(earlier.row_writes),
            select_loads: self.select_loads.saturating_sub(earlier.select_loads),
            htree_traversals: self
                .htree_traversals
                .saturating_sub(earlier.htree_traversals),
            init_ops: self.init_ops.saturating_sub(earlier.init_ops),
            extractions: self.extractions.saturating_sub(earlier.extractions),
        }
    }

    /// Total array-level accesses of any kind (useful for sanity checks).
    pub fn total_events(&self) -> u64 {
        self.column_search_steps
            + self.mat_column_searches
            + self.row_reads
            + self.row_writes
            + self.select_loads
            + self.htree_traversals
            + self.init_ops
            + self.extractions
    }
}

impl Add for OpCounters {
    type Output = OpCounters;

    fn add(mut self, rhs: OpCounters) -> OpCounters {
        self += rhs;
        self
    }
}

impl AddAssign for OpCounters {
    fn add_assign(&mut self, rhs: OpCounters) {
        self.column_search_steps += rhs.column_search_steps;
        self.mat_column_searches += rhs.mat_column_searches;
        self.row_reads += rhs.row_reads;
        self.row_writes += rhs.row_writes;
        self.select_loads += rhs.select_loads;
        self.htree_traversals += rhs.htree_traversals;
        self.init_ops += rhs.init_ops;
        self.extractions += rhs.extractions;
    }
}

impl Sub for OpCounters {
    type Output = OpCounters;

    fn sub(self, rhs: OpCounters) -> OpCounters {
        self.delta_since(&rhs)
    }
}

impl SubAssign for OpCounters {
    fn sub_assign(&mut self, rhs: OpCounters) {
        *self = self.delta_since(&rhs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_accumulates() {
        let mut a = OpCounters::new();
        a.row_reads = 3;
        a.extractions = 1;
        let mut b = OpCounters::new();
        b.row_reads = 2;
        b.column_search_steps = 64;
        let c = a + b;
        assert_eq!(c.row_reads, 5);
        assert_eq!(c.column_search_steps, 64);
        assert_eq!(c.extractions, 1);
    }

    #[test]
    fn reset_zeroes() {
        let mut a = OpCounters::new();
        a.row_writes = 9;
        a.reset();
        assert_eq!(a, OpCounters::default());
        assert_eq!(a.total_events(), 0);
    }

    #[test]
    fn delta_since_is_fieldwise_and_saturating() {
        let mut before = OpCounters::new();
        before.row_reads = 3;
        before.extractions = 2;
        let mut after = before;
        after.row_reads = 7;
        after.select_loads = 5;
        let d = after - before;
        assert_eq!(d.row_reads, 4);
        assert_eq!(d.select_loads, 5);
        assert_eq!(d.extractions, 0);
        // A reset between snapshots saturates to zero instead of wrapping.
        let zeroed = OpCounters::new();
        assert_eq!(zeroed.delta_since(&before), OpCounters::default());
        let mut acc = after;
        acc -= before;
        assert_eq!(acc, d);
    }

    #[test]
    fn total_events_sums_everything() {
        let mut a = OpCounters::new();
        a.column_search_steps = 1;
        a.mat_column_searches = 2;
        a.row_reads = 3;
        a.row_writes = 4;
        a.select_loads = 5;
        a.htree_traversals = 6;
        a.init_ops = 7;
        a.extractions = 8;
        assert_eq!(a.total_events(), 36);
    }
}
