//! The bit-serial search schedule (§III-A).
//!
//! Algorithm 1 scans bit positions from MSB to LSB; at each position the
//! periphery keeps the selected rows whose cell matches a *reference bit*,
//! unless no selected row matches (the *all-0-or-1* gate, Fig. 7). Which
//! reference bit each step uses depends on the key format and on whether a
//! minimum or maximum is sought; for floating point it additionally depends
//! on whether the sign step left negative survivors (§III-A.3 and the
//! erratum note in `DESIGN.md` §5).
//!
//! [`SearchPlan`] encodes that schedule so the chip controller, the golden
//! software model, and tests all share one definition.

use crate::encoding::{FormatKind, KeyFormat};

/// Whether a ranking operation extracts the minimum or the maximum.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Extract the smallest remaining key.
    Min,
    /// Extract the largest remaining key.
    Max,
}

impl Direction {
    /// The opposite direction.
    pub fn reverse(self) -> Direction {
        match self {
            Direction::Min => Direction::Max,
            Direction::Max => Direction::Min,
        }
    }
}

/// The per-step reference-bit schedule for one (format, direction) pair.
///
/// # Example
///
/// ```
/// use rime_memristive::{Direction, KeyFormat, SearchPlan};
///
/// let plan = SearchPlan::new(KeyFormat::FLOAT32, Direction::Min);
/// assert_eq!(plan.steps(), 32);
/// // Sign step keeps negatives (bit 1) when hunting the minimum.
/// assert!(plan.keep_bit(0, false));
/// // Among negative survivors, larger magnitude = smaller value.
/// assert!(plan.keep_bit(1, true));
/// assert!(!plan.keep_bit(1, false));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SearchPlan {
    format: KeyFormat,
    direction: Direction,
}

impl SearchPlan {
    /// Builds the schedule for `format` and `direction`.
    pub fn new(format: KeyFormat, direction: Direction) -> SearchPlan {
        SearchPlan { format, direction }
    }

    /// The key format this plan ranks.
    pub fn format(&self) -> KeyFormat {
        self.format
    }

    /// The ranking direction.
    pub fn direction(&self) -> Direction {
        self.direction
    }

    /// Number of column-search steps (the key width `k`).
    pub fn steps(&self) -> u16 {
        self.format.bits()
    }

    /// Bit position examined at `step` (step 0 is the MSB / sign bit).
    pub fn position(&self, step: u16) -> u16 {
        debug_assert!(step < self.steps());
        self.steps() - 1 - step
    }

    /// Whether `step` is the sign step for a format whose MSB is a sign bit.
    pub fn is_sign_step(&self, step: u16) -> bool {
        step == 0 && !matches!(self.format.kind(), FormatKind::Unsigned)
    }

    /// The reference bit to *keep* at `step`.
    ///
    /// `survivors_negative` reports whether the sign step left a negative
    /// survivor set; it is ignored at the sign step itself and for formats
    /// where it cannot matter (unsigned, two's-complement signed).
    /// The chip controller derives it from the sign-step column-search
    /// outcome using the same two per-mat signals §IV-B.2 describes.
    pub fn keep_bit(&self, step: u16, survivors_negative: bool) -> bool {
        let min = self.direction == Direction::Min;
        match self.format.kind() {
            // Unsigned: more-significant 0s ⇒ smaller value.
            FormatKind::Unsigned => !min,
            // Two's complement: sign 1 ⇒ negative ⇒ smaller; after the sign
            // step the remaining bits order like unsigned regardless of the
            // survivor sign (e.g. -8 = 1000 < -1 = 1111).
            FormatKind::Signed => {
                if step == 0 {
                    min
                } else {
                    !min
                }
            }
            // IEEE-754 sign-magnitude: after the sign step, a *negative*
            // survivor set orders inverted (bigger magnitude ⇒ smaller
            // value), a positive one orders like unsigned.
            FormatKind::Float => {
                if step == 0 || survivors_negative {
                    min
                } else {
                    !min
                }
            }
        }
    }

    /// How the controller learns whether negative keys survived the sign
    /// step, from the global column-search outcome at the sign position.
    ///
    /// `any_one` / `any_zero` are the ORed per-mat signals (§IV-B.2) saying
    /// whether any *selected* cell in the sign column held a 1 / a 0.
    pub fn survivors_negative(&self, any_one: bool, any_zero: bool) -> bool {
        match self.direction {
            // Min keeps sign-1 rows when present.
            Direction::Min => any_one,
            // Max keeps sign-0 rows when present; survivors are negative
            // only if *no* positive key existed.
            Direction::Max => !any_zero && any_one,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unsigned_plan_is_constant() {
        let min = SearchPlan::new(KeyFormat::UNSIGNED32, Direction::Min);
        let max = SearchPlan::new(KeyFormat::UNSIGNED32, Direction::Max);
        for step in 0..32 {
            assert!(!min.keep_bit(step, false));
            assert!(!min.keep_bit(step, true));
            assert!(max.keep_bit(step, false));
        }
        assert!(!min.is_sign_step(0));
    }

    #[test]
    fn signed_plan_flips_only_at_sign() {
        let min = SearchPlan::new(KeyFormat::SIGNED32, Direction::Min);
        assert!(min.keep_bit(0, false), "sign step keeps negatives");
        for step in 1..32 {
            assert!(!min.keep_bit(step, true));
            assert!(!min.keep_bit(step, false));
        }
        let max = SearchPlan::new(KeyFormat::SIGNED32, Direction::Max);
        assert!(!max.keep_bit(0, false), "sign step keeps positives");
        assert!(max.keep_bit(5, false));
        assert!(min.is_sign_step(0));
        assert!(!min.is_sign_step(1));
    }

    #[test]
    fn float_plan_depends_on_survivor_sign() {
        let min = SearchPlan::new(KeyFormat::FLOAT64, Direction::Min);
        assert!(min.keep_bit(0, false));
        assert!(min.keep_bit(3, true), "negatives: keep larger magnitude");
        assert!(!min.keep_bit(3, false), "positives: keep smaller magnitude");
        let max = SearchPlan::new(KeyFormat::FLOAT64, Direction::Max);
        assert!(!max.keep_bit(0, false));
        assert!(
            !max.keep_bit(3, true),
            "all-negative max: smallest magnitude"
        );
        assert!(max.keep_bit(3, false));
    }

    #[test]
    fn survivor_sign_resolution() {
        let min = SearchPlan::new(KeyFormat::FLOAT32, Direction::Min);
        assert!(
            min.survivors_negative(true, true),
            "mixed: min keeps negatives"
        );
        assert!(!min.survivors_negative(false, true), "all positive");
        assert!(min.survivors_negative(true, false), "all negative");

        let max = SearchPlan::new(KeyFormat::FLOAT32, Direction::Max);
        assert!(
            !max.survivors_negative(true, true),
            "mixed: max keeps positives"
        );
        assert!(max.survivors_negative(true, false), "all negative");
        assert!(!max.survivors_negative(false, true), "all positive");
    }

    #[test]
    fn positions_run_msb_to_lsb() {
        let plan = SearchPlan::new(KeyFormat::UNSIGNED64, Direction::Min);
        assert_eq!(plan.position(0), 63);
        assert_eq!(plan.position(63), 0);
        assert_eq!(plan.steps(), 64);
    }

    #[test]
    fn direction_reverse() {
        assert_eq!(Direction::Min.reverse(), Direction::Max);
        assert_eq!(Direction::Max.reverse(), Direction::Min);
    }
}
