//! Dense bit vectors for select vectors, match vectors, and exclusion flags.
//!
//! The RIME periphery manipulates whole vectors of per-row latches at once
//! (Fig. 7): the select vector gates which rows participate in a column
//! search, the match vector is the XNOR of the sensed column with the
//! reference bit, and exclusion flags persist found rows across sort
//! accesses. [`Bitmap`] is the shared representation for all three.

use std::fmt;

/// A fixed-length vector of bits backed by `u64` words.
///
/// Invariant: bits in the last word beyond `len` are always zero, so
/// word-level kernels (`intersects_not`, `assign_and_not`, …) never see
/// phantom tail bits even when they complement an operand.
///
/// # Example
///
/// ```
/// use rime_memristive::Bitmap;
///
/// let mut select = Bitmap::zeros(8);
/// select.set_range(2, 6);
/// assert_eq!(select.count_ones(), 4);
/// assert_eq!(select.first_one(), Some(2));
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Bitmap {
    len: usize,
    words: Vec<u64>,
}

impl Bitmap {
    /// Creates a bitmap of `len` zero bits.
    pub fn zeros(len: usize) -> Self {
        Bitmap {
            len,
            words: vec![0; len.div_ceil(64)],
        }
    }

    /// Creates a bitmap of `len` one bits.
    pub fn ones(len: usize) -> Self {
        let mut bm = Bitmap {
            len,
            words: vec![u64::MAX; len.div_ceil(64)],
        };
        bm.mask_tail();
        bm
    }

    fn mask_tail(&mut self) {
        let rem = self.len % 64;
        if rem != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << rem) - 1;
            }
        }
    }

    /// Number of bits in the bitmap.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the bitmap has zero bits (length zero, not value zero).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reads the bit at `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= len`.
    pub fn get(&self, idx: usize) -> bool {
        assert!(idx < self.len, "bit index {idx} out of range {}", self.len);
        self.words[idx / 64] >> (idx % 64) & 1 == 1
    }

    /// Writes the bit at `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= len`.
    pub fn set(&mut self, idx: usize, value: bool) {
        assert!(idx < self.len, "bit index {idx} out of range {}", self.len);
        let word = &mut self.words[idx / 64];
        let mask = 1u64 << (idx % 64);
        if value {
            *word |= mask;
        } else {
            *word &= !mask;
        }
    }

    /// Sets every bit in `[start, end)` to one, a whole word at a time:
    /// partial first/last words get masked ORs, fully covered words are
    /// filled directly.
    ///
    /// # Panics
    ///
    /// Panics if `start > end` or `end > len`.
    pub fn set_range(&mut self, start: usize, end: usize) {
        assert!(start <= end && end <= self.len, "range out of bounds");
        if start == end {
            return;
        }
        let (first, last) = (start / 64, (end - 1) / 64);
        let head = u64::MAX << (start % 64);
        let tail = u64::MAX >> (63 - (end - 1) % 64);
        if first == last {
            self.words[first] |= head & tail;
        } else {
            self.words[first] |= head;
            for word in &mut self.words[first + 1..last] {
                *word = u64::MAX;
            }
            self.words[last] |= tail;
        }
    }

    /// Clears all bits.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Number of one bits.
    ///
    /// Four-wide unrolled so the popcounts pipeline instead of feeding a
    /// single serial accumulator.
    pub fn count_ones(&self) -> usize {
        let mut chunks = self.words.chunks_exact(4);
        let (mut c0, mut c1, mut c2, mut c3) = (0usize, 0usize, 0usize, 0usize);
        for w in chunks.by_ref() {
            c0 += w[0].count_ones() as usize;
            c1 += w[1].count_ones() as usize;
            c2 += w[2].count_ones() as usize;
            c3 += w[3].count_ones() as usize;
        }
        let mut count = c0 + c1 + c2 + c3;
        for &w in chunks.remainder() {
            count += w.count_ones() as usize;
        }
        count
    }

    /// Whether no bit is set.
    pub fn none(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Whether at least one bit is set.
    pub fn any(&self) -> bool {
        !self.none()
    }

    /// Index of the lowest set bit, if any.
    ///
    /// The H-tree priority encoder always resolves ties toward the lowest
    /// address (Fig. 10), which this mirrors.
    pub fn first_one(&self) -> Option<usize> {
        for (wi, &w) in self.words.iter().enumerate() {
            if w != 0 {
                let idx = wi * 64 + w.trailing_zeros() as usize;
                return (idx < self.len).then_some(idx);
            }
        }
        None
    }

    /// In-place intersection with `other`.
    ///
    /// Four-wide unrolled (a `u64x4` in stable scalar form) so the
    /// independent word ANDs issue without a loop-carried dependency.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn and_assign(&mut self, other: &Bitmap) {
        assert_eq!(self.len, other.len, "bitmap length mismatch");
        let mut dst = self.words.chunks_exact_mut(4);
        let mut src = other.words.chunks_exact(4);
        for (a, b) in dst.by_ref().zip(src.by_ref()) {
            a[0] &= b[0];
            a[1] &= b[1];
            a[2] &= b[2];
            a[3] &= b[3];
        }
        for (a, &b) in dst.into_remainder().iter_mut().zip(src.remainder()) {
            *a &= b;
        }
    }

    /// In-place union with `other`.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn or_assign(&mut self, other: &Bitmap) {
        assert_eq!(self.len, other.len, "bitmap length mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// In-place difference: clears every bit that is set in `other`.
    ///
    /// Four-wide unrolled like [`Bitmap::and_assign`].
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn and_not_assign(&mut self, other: &Bitmap) {
        assert_eq!(self.len, other.len, "bitmap length mismatch");
        let mut dst = self.words.chunks_exact_mut(4);
        let mut src = other.words.chunks_exact(4);
        for (a, b) in dst.by_ref().zip(src.by_ref()) {
            a[0] &= !b[0];
            a[1] &= !b[1];
            a[2] &= !b[2];
            a[3] &= !b[3];
        }
        for (a, &b) in dst.into_remainder().iter_mut().zip(src.remainder()) {
            *a &= !b;
        }
    }

    /// Fused `self &= other` that also reports how many bits were cleared,
    /// in a single pass: per word the removed count is
    /// `(old ^ new).count_ones()`. Replaces the count / AND / count
    /// three-pass shape on the exclusion hot path.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn and_assign_count_removed(&mut self, other: &Bitmap) -> usize {
        assert_eq!(self.len, other.len, "bitmap length mismatch");
        let mut removed = 0usize;
        let mut dst = self.words.chunks_exact_mut(4);
        let mut src = other.words.chunks_exact(4);
        for (a, b) in dst.by_ref().zip(src.by_ref()) {
            let (n0, n1, n2, n3) = (a[0] & b[0], a[1] & b[1], a[2] & b[2], a[3] & b[3]);
            removed += ((a[0] ^ n0).count_ones()
                + (a[1] ^ n1).count_ones()
                + (a[2] ^ n2).count_ones()
                + (a[3] ^ n3).count_ones()) as usize;
            a[0] = n0;
            a[1] = n1;
            a[2] = n2;
            a[3] = n3;
        }
        for (a, &b) in dst.into_remainder().iter_mut().zip(src.remainder()) {
            let n = *a & b;
            removed += (*a ^ n).count_ones() as usize;
            *a = n;
        }
        removed
    }

    /// Fused `self &= !other` that also reports how many bits were
    /// cleared — ANDN counterpart of
    /// [`Bitmap::and_assign_count_removed`].
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn and_not_assign_count_removed(&mut self, other: &Bitmap) -> usize {
        assert_eq!(self.len, other.len, "bitmap length mismatch");
        let mut removed = 0usize;
        let mut dst = self.words.chunks_exact_mut(4);
        let mut src = other.words.chunks_exact(4);
        for (a, b) in dst.by_ref().zip(src.by_ref()) {
            let (n0, n1, n2, n3) = (a[0] & !b[0], a[1] & !b[1], a[2] & !b[2], a[3] & !b[3]);
            removed += ((a[0] ^ n0).count_ones()
                + (a[1] ^ n1).count_ones()
                + (a[2] ^ n2).count_ones()
                + (a[3] ^ n3).count_ones()) as usize;
            a[0] = n0;
            a[1] = n1;
            a[2] = n2;
            a[3] = n3;
        }
        for (a, &b) in dst.into_remainder().iter_mut().zip(src.remainder()) {
            let n = *a & !b;
            removed += (*a ^ n).count_ones() as usize;
            *a = n;
        }
        removed
    }

    /// The backing `u64` words, least-significant bit first. Bits beyond
    /// `len` in the last word are guaranteed zero (see the type-level
    /// invariant), so word-level consumers need no tail handling of their
    /// own.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Number of one bits in the intersection with `other`, without
    /// materializing it.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn and_count(&self, other: &Bitmap) -> usize {
        assert_eq!(self.len, other.len, "bitmap length mismatch");
        self.words
            .iter()
            .zip(&other.words)
            .map(|(&a, &b)| (a & b).count_ones() as usize)
            .sum()
    }

    /// Whether any bit is set in both `self` and `other` (early-exits on
    /// the first overlapping word).
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn intersects(&self, other: &Bitmap) -> bool {
        assert_eq!(self.len, other.len, "bitmap length mismatch");
        self.words
            .iter()
            .zip(&other.words)
            .any(|(&a, &b)| a & b != 0)
    }

    /// Whether any bit is set in `self` but clear in `other` (early-exits
    /// on the first such word). The complement's phantom tail bits are
    /// harmless because `self`'s tail is guaranteed zero.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn intersects_not(&self, other: &Bitmap) -> bool {
        assert_eq!(self.len, other.len, "bitmap length mismatch");
        self.words
            .iter()
            .zip(&other.words)
            .any(|(&a, &b)| a & !b != 0)
    }

    /// Overwrites `self` with `a & b` — the zero-allocation form the
    /// match-vector scratch path uses.
    ///
    /// # Panics
    ///
    /// Panics if the three lengths differ.
    pub fn assign_and(&mut self, a: &Bitmap, b: &Bitmap) {
        assert!(
            self.len == a.len && self.len == b.len,
            "bitmap length mismatch"
        );
        for ((dst, &wa), &wb) in self.words.iter_mut().zip(&a.words).zip(&b.words) {
            *dst = wa & wb;
        }
    }

    /// Overwrites `self` with `a & !b` (ANDN). `a`'s zero tail keeps the
    /// result's tail zero despite the complement.
    ///
    /// # Panics
    ///
    /// Panics if the three lengths differ.
    pub fn assign_and_not(&mut self, a: &Bitmap, b: &Bitmap) {
        assert!(
            self.len == a.len && self.len == b.len,
            "bitmap length mismatch"
        );
        for ((dst, &wa), &wb) in self.words.iter_mut().zip(&a.words).zip(&b.words) {
            *dst = wa & !wb;
        }
    }

    /// Overwrites `self` with the `self.len()`-bit subrange of `src`
    /// starting at `start` — [`Bitmap::slice`] without the allocation,
    /// which is what lets the batched extraction engine rearm per-array
    /// select vectors from the membership bitmap with zero per-iteration
    /// allocations.
    ///
    /// # Panics
    ///
    /// Panics if `start + self.len() > src.len()`.
    pub fn assign_slice(&mut self, src: &Bitmap, start: usize) {
        assert!(
            start
                .checked_add(self.len)
                .is_some_and(|end| end <= src.len),
            "slice [{start}, {start}+{}) out of range {}",
            self.len,
            src.len
        );
        let shift = start % 64;
        for wi in 0..self.words.len() {
            let idx = start / 64 + wi;
            let lo = src.words[idx] >> shift;
            let hi = if shift != 0 && idx + 1 < src.words.len() {
                src.words[idx + 1] << (64 - shift)
            } else {
                0
            };
            self.words[wi] = lo | hi;
        }
        self.mask_tail();
    }

    /// Number of one bits inside `[start, end)`, a word at a time (masked
    /// popcounts on the partial boundary words).
    ///
    /// # Panics
    ///
    /// Panics if `start > end` or `end > len`.
    pub fn count_ones_in_range(&self, start: usize, end: usize) -> usize {
        assert!(start <= end && end <= self.len, "range out of bounds");
        if start == end {
            return 0;
        }
        let (first, last) = (start / 64, (end - 1) / 64);
        let head = u64::MAX << (start % 64);
        let tail = u64::MAX >> (63 - (end - 1) % 64);
        if first == last {
            return (self.words[first] & head & tail).count_ones() as usize;
        }
        let mut count = (self.words[first] & head).count_ones() as usize;
        for &word in &self.words[first + 1..last] {
            count += word.count_ones() as usize;
        }
        count + (self.words[last] & tail).count_ones() as usize
    }

    /// Extracts the `len`-bit subrange starting at `start` as a new bitmap.
    ///
    /// Works a `u64` word at a time (two shifts per output word), which is
    /// what lets the chip's batched extraction rearm select vectors from a
    /// membership bitmap without walking individual bits. See
    /// [`Bitmap::assign_slice`] for the allocation-free form.
    ///
    /// # Panics
    ///
    /// Panics if `start + len > self.len()`.
    pub fn slice(&self, start: usize, len: usize) -> Bitmap {
        let mut out = Bitmap::zeros(len);
        out.assign_slice(self, start);
        out
    }

    /// Iterator over the indices of set bits, ascending.
    pub fn iter_ones(&self) -> IterOnes<'_> {
        IterOnes {
            bitmap: self,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }
}

impl fmt::Debug for Bitmap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bitmap[{}; ", self.len)?;
        for idx in 0..self.len.min(128) {
            write!(f, "{}", self.get(idx) as u8)?;
        }
        if self.len > 128 {
            write!(f, "…")?;
        }
        write!(f, "]")
    }
}

impl FromIterator<bool> for Bitmap {
    fn from_iter<I: IntoIterator<Item = bool>>(iter: I) -> Self {
        let bits: Vec<bool> = iter.into_iter().collect();
        let mut bm = Bitmap::zeros(bits.len());
        for (idx, bit) in bits.into_iter().enumerate() {
            if bit {
                bm.set(idx, true);
            }
        }
        bm
    }
}

/// Iterator over set-bit indices produced by [`Bitmap::iter_ones`].
#[derive(Debug)]
pub struct IterOnes<'a> {
    bitmap: &'a Bitmap,
    word_idx: usize,
    current: u64,
}

impl Iterator for IterOnes<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                let idx = self.word_idx * 64 + bit;
                if idx < self.bitmap.len {
                    return Some(idx);
                }
                return None;
            }
            self.word_idx += 1;
            if self.word_idx >= self.bitmap.words.len() {
                return None;
            }
            self.current = self.bitmap.words[self.word_idx];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_ones() {
        let z = Bitmap::zeros(70);
        assert_eq!(z.count_ones(), 0);
        assert!(z.none());
        let o = Bitmap::ones(70);
        assert_eq!(o.count_ones(), 70);
        assert!(o.any());
        // tail bits beyond len must not be set
        assert_eq!(o.words.last().unwrap().count_ones(), 6);
    }

    #[test]
    fn set_get_roundtrip() {
        let mut bm = Bitmap::zeros(130);
        bm.set(0, true);
        bm.set(64, true);
        bm.set(129, true);
        assert!(bm.get(0) && bm.get(64) && bm.get(129));
        assert!(!bm.get(1));
        bm.set(64, false);
        assert!(!bm.get(64));
        assert_eq!(bm.count_ones(), 2);
    }

    #[test]
    fn set_range_spans_words() {
        let mut bm = Bitmap::zeros(200);
        bm.set_range(60, 140);
        assert_eq!(bm.count_ones(), 80);
        assert!(bm.get(60) && bm.get(139));
        assert!(!bm.get(59) && !bm.get(140));
    }

    #[test]
    fn first_one_finds_lowest() {
        let mut bm = Bitmap::zeros(512);
        assert_eq!(bm.first_one(), None);
        bm.set(300, true);
        bm.set(77, true);
        assert_eq!(bm.first_one(), Some(77));
    }

    #[test]
    fn boolean_ops() {
        let mut a = Bitmap::zeros(10);
        a.set_range(0, 6);
        let mut b = Bitmap::zeros(10);
        b.set_range(4, 10);

        let mut and = a.clone();
        and.and_assign(&b);
        assert_eq!(and.iter_ones().collect::<Vec<_>>(), vec![4, 5]);

        let mut or = a.clone();
        or.or_assign(&b);
        assert_eq!(or.count_ones(), 10);

        a.and_not_assign(&b);
        assert_eq!(a.iter_ones().collect::<Vec<_>>(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn iter_ones_across_words() {
        let mut bm = Bitmap::zeros(256);
        for idx in [0, 63, 64, 127, 128, 255] {
            bm.set(idx, true);
        }
        assert_eq!(
            bm.iter_ones().collect::<Vec<_>>(),
            vec![0, 63, 64, 127, 128, 255]
        );
    }

    #[test]
    fn slice_matches_per_bit_extraction() {
        let mut bm = Bitmap::zeros(300);
        for idx in [0, 1, 63, 64, 65, 100, 190, 191, 192, 299] {
            bm.set(idx, true);
        }
        for (start, len) in [
            (0, 300),
            (0, 64),
            (1, 64),
            (63, 130),
            (190, 3),
            (300, 0),
            (37, 0),
        ] {
            let got = bm.slice(start, len);
            let want: Bitmap = (start..start + len).map(|idx| bm.get(idx)).collect();
            assert_eq!(got, want, "slice({start}, {len})");
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn slice_past_end_panics() {
        Bitmap::zeros(10).slice(8, 3);
    }

    #[test]
    fn set_range_word_boundaries_and_tail() {
        // Every alignment of interest: inside one word, exactly a word,
        // spanning several words, ending on the unaligned tail.
        for (len, start, end) in [
            (70, 0, 0),
            (70, 3, 9),
            (70, 0, 64),
            (70, 63, 65),
            (70, 1, 70),
            (200, 60, 140),
            (200, 64, 128),
            (191, 120, 191),
        ] {
            let mut bm = Bitmap::zeros(len);
            bm.set_range(start, end);
            let mut want = Bitmap::zeros(len);
            for idx in start..end {
                want.set(idx, true);
            }
            assert_eq!(bm, want, "set_range({start}, {end}) on len {len}");
            // Tail invariant: no phantom bits past len.
            let rem = len % 64;
            if rem != 0 {
                assert_eq!(bm.words.last().unwrap() >> rem, 0, "tail must stay zero");
            }
        }
    }

    #[test]
    fn and_count_and_intersects() {
        let mut a = Bitmap::zeros(130);
        let mut b = Bitmap::zeros(130);
        a.set_range(0, 70);
        b.set_range(63, 129);
        assert_eq!(a.and_count(&b), 7); // bits 63..70 overlap
        assert!(a.intersects(&b));
        assert!(a.intersects_not(&b)); // bits 0..63 are in a only
        assert!(b.intersects_not(&a)); // bits 70..129 are in b only

        let disjoint: Bitmap = Bitmap::zeros(130);
        assert_eq!(a.and_count(&disjoint), 0);
        assert!(!a.intersects(&disjoint));
        assert!(!disjoint.intersects_not(&a));
        // intersects_not must not be fooled by !other's phantom tail bits.
        let full = Bitmap::ones(130);
        assert!(!full.intersects_not(&full));
    }

    #[test]
    fn assign_and_kernels_match_per_bit() {
        let a: Bitmap = (0..150).map(|i| i % 3 == 0).collect();
        let b: Bitmap = (0..150).map(|i| i % 5 != 0).collect();
        let mut and = Bitmap::ones(150);
        and.assign_and(&a, &b);
        let mut andn = Bitmap::ones(150);
        andn.assign_and_not(&a, &b);
        for idx in 0..150 {
            assert_eq!(and.get(idx), a.get(idx) && b.get(idx), "and bit {idx}");
            assert_eq!(andn.get(idx), a.get(idx) && !b.get(idx), "andn bit {idx}");
        }
        assert_eq!(and.count_ones(), a.and_count(&b));
        // Tail stays masked even though !b has phantom ones there.
        assert_eq!(andn.words.last().unwrap() >> (150 % 64), 0);
    }

    #[test]
    fn assign_slice_matches_slice_across_words() {
        let src: Bitmap = (0..300).map(|i| i % 7 < 3).collect();
        for (start, len) in [(0, 300), (1, 64), (63, 130), (190, 3), (299, 1), (37, 0)] {
            let mut out = Bitmap::ones(len);
            out.assign_slice(&src, start);
            assert_eq!(out, src.slice(start, len), "assign_slice({start}, {len})");
        }
    }

    #[test]
    fn count_ones_in_range_matches_per_bit() {
        let bm: Bitmap = (0..200).map(|i| i % 3 == 1).collect();
        for (start, end) in [
            (0, 0),
            (0, 200),
            (5, 60),
            (60, 70),
            (63, 65),
            (64, 128),
            (130, 199),
        ] {
            let want = (start..end).filter(|&i| bm.get(i)).count();
            assert_eq!(bm.count_ones_in_range(start, end), want, "[{start}, {end})");
        }
    }

    #[test]
    fn fused_count_removed_matches_three_pass() {
        // Lengths straddling the 4-word unroll boundary: remainder of
        // 0..3 words plus the empty and sub-chunk cases.
        for len in [0, 1, 63, 64, 129, 256, 257, 300, 511] {
            let a: Bitmap = (0..len).map(|i| i % 3 != 1).collect();
            let b: Bitmap = (0..len).map(|i| i % 5 < 3).collect();

            let mut fused = a.clone();
            let removed = fused.and_assign_count_removed(&b);
            let mut three = a.clone();
            let before = three.count_ones();
            three.and_assign(&b);
            assert_eq!(fused, three, "and result at len {len}");
            assert_eq!(removed, before - three.count_ones(), "and removed {len}");

            let mut fused = a.clone();
            let removed = fused.and_not_assign_count_removed(&b);
            let mut three = a.clone();
            let before = three.count_ones();
            three.and_not_assign(&b);
            assert_eq!(fused, three, "andn result at len {len}");
            assert_eq!(removed, before - three.count_ones(), "andn removed {len}");
        }
    }

    #[test]
    fn unrolled_kernels_match_per_bit_on_odd_lengths() {
        for len in [1, 4, 65, 255, 256, 259] {
            let a: Bitmap = (0..len).map(|i| i % 7 < 4).collect();
            let b: Bitmap = (0..len).map(|i| i % 11 > 5).collect();
            let mut and = a.clone();
            and.and_assign(&b);
            let mut andn = a.clone();
            andn.and_not_assign(&b);
            let mut want_ones = 0;
            for idx in 0..len {
                assert_eq!(and.get(idx), a.get(idx) && b.get(idx), "and {len}/{idx}");
                assert_eq!(andn.get(idx), a.get(idx) && !b.get(idx), "andn {len}/{idx}");
                want_ones += a.get(idx) as usize;
            }
            assert_eq!(a.count_ones(), want_ones, "count_ones at len {len}");
        }
    }

    #[test]
    fn from_iterator() {
        let bm: Bitmap = [true, false, true, true].into_iter().collect();
        assert_eq!(bm.len(), 4);
        assert_eq!(bm.iter_ones().collect::<Vec<_>>(), vec![0, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        Bitmap::zeros(4).get(4);
    }

    #[test]
    fn debug_is_nonempty() {
        let bm = Bitmap::zeros(4);
        assert!(!format!("{bm:?}").is_empty());
    }
}
