//! Endurance and lifetime estimation (§VII-C).
//!
//! RRAM cells endure a finite number of writes (10⁶–10¹² in the literature;
//! the paper's study uses 10⁸). Wear is only induced by *writing* the
//! memristive arrays: RIME performs no data swaps during sorting, and the
//! select/exclusion state lives in CMOS latches. The paper's methodology,
//! reproduced here, is: track the per-block write rate during workload
//! execution, find the most frequently written block, and assume it keeps
//! absorbing writes at that rate until it dies.

/// Tracks write traffic and projects device lifetime.
///
/// # Example
///
/// ```
/// use rime_memristive::EnduranceTracker;
///
/// let mut t = EnduranceTracker::new(1e8 as u64);
/// // A workload wrote its hottest block 84 times over 10 000 seconds.
/// t.record_hottest_block(84, 10_000.0);
/// assert!(t.lifetime_years().unwrap() > 300.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnduranceTracker {
    endurance_writes: u64,
    hottest_writes: u64,
    elapsed_seconds: f64,
}

impl EnduranceTracker {
    /// The paper's §VII-C endurance assumption.
    pub const PAPER_ENDURANCE: u64 = 100_000_000;

    /// Creates a tracker for cells enduring `endurance_writes` writes.
    ///
    /// # Panics
    ///
    /// Panics if `endurance_writes` is zero.
    pub fn new(endurance_writes: u64) -> EnduranceTracker {
        assert!(endurance_writes > 0, "endurance must be positive");
        EnduranceTracker {
            endurance_writes,
            hottest_writes: 0,
            elapsed_seconds: 0.0,
        }
    }

    /// Records an observation window: the most-written block absorbed
    /// `writes` writes over `seconds` of (simulated) execution.
    ///
    /// Windows accumulate; the projected write rate is total hottest-block
    /// writes over total time.
    pub fn record_hottest_block(&mut self, writes: u64, seconds: f64) {
        assert!(seconds >= 0.0, "time cannot run backwards");
        self.hottest_writes += writes;
        self.elapsed_seconds += seconds;
    }

    /// The hottest block's observed write rate (writes/second), if any
    /// time has elapsed.
    pub fn write_rate(&self) -> Option<f64> {
        (self.elapsed_seconds > 0.0).then(|| self.hottest_writes as f64 / self.elapsed_seconds)
    }

    /// Projected lifetime in seconds: endurance divided by the hottest
    /// block's write rate. `None` before any observation, `f64::INFINITY`
    /// when no writes were observed.
    pub fn lifetime_seconds(&self) -> Option<f64> {
        let rate = self.write_rate()?;
        Some(if rate == 0.0 {
            f64::INFINITY
        } else {
            self.endurance_writes as f64 / rate
        })
    }

    /// Projected lifetime in years.
    pub fn lifetime_years(&self) -> Option<f64> {
        const SECONDS_PER_YEAR: f64 = 365.25 * 24.0 * 3600.0;
        self.lifetime_seconds().map(|s| s / SECONDS_PER_YEAR)
    }
}

impl Default for EnduranceTracker {
    fn default() -> Self {
        EnduranceTracker::new(Self::PAPER_ENDURANCE)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_observation_no_estimate() {
        let t = EnduranceTracker::default();
        assert_eq!(t.write_rate(), None);
        assert_eq!(t.lifetime_years(), None);
    }

    #[test]
    fn zero_writes_is_infinite_lifetime() {
        let mut t = EnduranceTracker::default();
        t.record_hottest_block(0, 10.0);
        assert_eq!(t.lifetime_seconds(), Some(f64::INFINITY));
    }

    #[test]
    fn lifetime_matches_hand_computation() {
        let mut t = EnduranceTracker::new(1_000_000);
        t.record_hottest_block(100, 1.0); // 100 writes/s
        let secs = t.lifetime_seconds().unwrap();
        assert!((secs - 10_000.0).abs() < 1e-9);
    }

    #[test]
    fn windows_accumulate() {
        let mut t = EnduranceTracker::new(1_000_000);
        t.record_hottest_block(50, 1.0);
        t.record_hottest_block(150, 1.0); // combined: 100 writes/s
        assert!((t.write_rate().unwrap() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn paper_scale_exceeds_376_years() {
        // §VII-C: with 10⁸ endurance, evaluated applications show ≥376-year
        // lifetimes. A hottest-block rate of ~8.4e-3 writes/s corresponds to
        // that bound; RIME's write rate is low because sorting never
        // rewrites cells.
        let mut t = EnduranceTracker::new(EnduranceTracker::PAPER_ENDURANCE);
        t.record_hottest_block(84, 10_000.0);
        assert!(t.lifetime_years().unwrap() > 376.0);
    }

    #[test]
    #[should_panic(expected = "endurance must be positive")]
    fn zero_endurance_rejected() {
        EnduranceTracker::new(0);
    }
}
