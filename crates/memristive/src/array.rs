//! A single 1T1R memristive array with RIME periphery (§IV-A, Fig. 7).
//!
//! Keys live one per wordline; the first `k` bitlines of a row hold the
//! key's bits (1 = low-resistance state, 0 = high-resistance state). The
//! RIME periphery adds, per array:
//!
//! * a **select vector** of per-wordline latches gating which rows
//!   participate in column searches,
//! * **column search**: drive one bitline, sense all selectlines, XNOR the
//!   sensed column with a 1-bit reference to form the **match vector**,
//! * the **all-0-or-1 logic** producing the `load` gate (modelled at the
//!   mat/chip level through the [`ColumnSignals`] the array reports).
//!
//! Writes are the only wear-inducing operation; the array tracks per-row
//! write counts for the §VII-C lifetime study.

use crate::bitmap::Bitmap;

/// Per-array outcome of sensing one column restricted to selected rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ColumnSignals {
    /// At least one selected cell in the column holds 1.
    pub any_one: bool,
    /// At least one selected cell in the column holds 0.
    pub any_zero: bool,
}

impl ColumnSignals {
    /// Whether every selected cell holds the same bit (or none is selected)
    /// — the *all 0 or 1* condition that vetoes a select-vector load.
    pub fn all_same(&self) -> bool {
        !(self.any_one && self.any_zero)
    }

    /// Merges signals from another array or mat (wired-OR upstream, Fig. 9).
    pub fn merge(&mut self, other: ColumnSignals) {
        self.any_one |= other.any_one;
        self.any_zero |= other.any_zero;
    }
}

/// Key bits per array row; the row-major store packs them in a `u64`.
const KEY_BITS: usize = 64;

/// Serializable snapshot of one array's durable state.
///
/// Captures exactly what nonvolatile cells hold: the *raw* (pre-fault)
/// row patterns, the per-row write counts, and the injected stuck-at
/// faults. Volatile periphery — the select latches and the derived
/// column shadow — is intentionally absent: latches are CMOS state that
/// every extraction re-arms before use, and the shadow is recomputed on
/// restore. Used by `rime-core`'s checkpoint/recovery path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArrayState {
    /// Raw row patterns as written (before stuck-at faults apply).
    pub rows: Vec<u64>,
    /// Per-row write counts (endurance bookkeeping, §VII-C).
    pub wear: Vec<u32>,
    /// Injected stuck-at faults as `(row, bit, stuck value)`.
    pub faults: Vec<(usize, u16, bool)>,
}

/// One memristive array: `rows` key slots of up to 64 key bits each.
///
/// The array stores each row's key bits packed in a `u64` — bit-identical
/// to the cells the paper describes for key widths up to 64; columns past
/// the key width would hold unrelated data in normal-storage mode and are
/// not modelled.
///
/// # Bit-sliced column shadow
///
/// Alongside the row-major store the array maintains a transposed view:
/// one [`Bitmap`] per bit position, holding that column's *effective*
/// (post-fault) cell values with one bit per row. A column search in
/// hardware senses every selected row in one analog step (Fig. 7); the
/// shadow lets the software model match that parallelism with
/// `rows/64` word operations (`select & column`, `select & !column`)
/// instead of a row-at-a-time scalar walk. The shadow is kept coherent
/// on every [`Array::write_row`] and fault change — see `sync_row` —
/// and is a pure simulator optimization: it models no extra hardware
/// and changes no operation counts.
#[derive(Debug, Clone)]
pub struct Array {
    rows: Vec<u64>,
    /// Transposed shadow: `cols[b]` bit `r` == effective bit `b` of row
    /// `r` (through any injected faults).
    cols: Vec<Bitmap>,
    select: Bitmap,
    /// Cached `select.count_ones()`, maintained by every select mutator so
    /// the per-step survivor checks cost O(1) instead of a popcount pass.
    selected: usize,
    wear: Vec<u32>,
    /// Injected stuck-at cell faults: (row, bit, stuck value). Endurance
    /// failures manifest as cells stuck in one resistance state; the
    /// fault list lets tests exercise the periphery under such defects.
    faults: Vec<(usize, u16, bool)>,
}

impl Array {
    /// Creates an array of `rows` zeroed key slots with an empty selection.
    pub fn new(rows: u32) -> Array {
        let rows = rows as usize;
        Array {
            rows: vec![0; rows],
            cols: (0..KEY_BITS).map(|_| Bitmap::zeros(rows)).collect(),
            select: Bitmap::zeros(rows),
            selected: 0,
            wear: vec![0; rows],
            faults: Vec::new(),
        }
    }

    /// Re-transposes one row into the column shadow after its effective
    /// value changed (write or fault edit). This is the single coherence
    /// point of the dual representation.
    fn sync_row(&mut self, row: usize) {
        let eff = self.effective(row);
        for (bit, col) in self.cols.iter_mut().enumerate() {
            col.set(row, eff >> bit & 1 == 1);
        }
    }

    /// Injects a stuck-at fault: the cell at (`row`, `bit`) permanently
    /// senses `stuck` regardless of what is written (worn-out RRAM cells
    /// freeze in one resistance state, §VII-C).
    pub fn inject_stuck_cell(&mut self, row: usize, bit: u16, stuck: bool) {
        assert!(row < self.rows.len(), "row {row} out of range");
        assert!(bit < KEY_BITS as u16, "bit {bit} out of range");
        self.faults.retain(|&(r, b, _)| (r, b) != (row, bit));
        self.faults.push((row, bit, stuck));
        self.cols[bit as usize].set(row, stuck);
    }

    /// Removes all injected faults.
    pub fn clear_faults(&mut self) {
        let dirty: Vec<usize> = self.faults.iter().map(|&(r, _, _)| r).collect();
        self.faults.clear();
        for row in dirty {
            self.sync_row(row);
        }
    }

    /// Number of injected faults.
    pub fn fault_count(&self) -> usize {
        self.faults.len()
    }

    fn effective(&self, row: usize) -> u64 {
        let mut raw = self.rows[row];
        for &(r, bit, stuck) in &self.faults {
            if r == row {
                if stuck {
                    raw |= 1 << bit;
                } else {
                    raw &= !(1 << bit);
                }
            }
        }
        raw
    }

    /// Number of key slots (wordlines).
    pub fn rows(&self) -> usize {
        self.rows.len()
    }

    /// Writes a raw key pattern into `row`, inducing one cell-line write.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range.
    pub fn write_row(&mut self, row: usize, raw: u64) {
        self.rows[row] = raw;
        self.wear[row] = self.wear[row].saturating_add(1);
        self.sync_row(row);
    }

    /// Reads the raw key pattern stored in `row` (through any injected
    /// stuck-at faults).
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range.
    pub fn read_row(&self, row: usize) -> u64 {
        if self.faults.is_empty() {
            self.rows[row]
        } else {
            self.effective(row)
        }
    }

    /// The select vector (shared view; per-wordline latches).
    pub fn select(&self) -> &Bitmap {
        &self.select
    }

    /// Replaces the select vector wholesale (used by range initialization).
    ///
    /// # Panics
    ///
    /// Panics if the length differs from the row count.
    pub fn set_select(&mut self, select: Bitmap) {
        assert_eq!(select.len(), self.rows.len(), "select vector length");
        self.selected = select.count_ones();
        self.select = select;
    }

    /// Replaces the select vector with the `rows()`-bit window of `bits`
    /// starting at `start` — the zero-allocation whole-vector latch the
    /// batched extraction engine rearms with.
    ///
    /// # Panics
    ///
    /// Panics if the window runs past `bits.len()`.
    pub fn load_select_window(&mut self, bits: &Bitmap, start: usize) {
        self.select.assign_slice(bits, start);
        self.selected = self.select.count_ones();
    }

    /// Sets or clears one select latch.
    pub fn set_select_bit(&mut self, row: usize, value: bool) {
        let was = self.select.get(row);
        if was != value {
            self.select.set(row, value);
            if value {
                self.selected += 1;
            } else {
                self.selected -= 1;
            }
        }
    }

    /// Clears the whole select vector.
    pub fn clear_select(&mut self) {
        self.select.clear();
        self.selected = 0;
    }

    /// Number of selected rows (cached; O(1)).
    pub fn selected_count(&self) -> usize {
        self.selected
    }

    /// Senses column `pos` across the selected rows (Fig. 7): returns the
    /// per-array signals; the match vector itself is produced by
    /// [`Array::match_vector`] when the controller decides to load.
    ///
    /// Bit-sliced: one pass over the `rows/64` select words, ANDing each
    /// against the column shadow (and its complement), with an early exit
    /// once both signals are raised — mirroring the hardware, which
    /// senses all selected rows in a single analog step.
    ///
    /// # Panics
    ///
    /// Panics if `pos >= 64`.
    pub fn sense_column(&self, pos: u16) -> ColumnSignals {
        if self.selected == 0 {
            return ColumnSignals::default();
        }
        let col = self.cols[pos as usize].words();
        let sel = self.select.words();
        let (mut one, mut zero) = (0u64, 0u64);
        let mut chunks = sel.chunks_exact(4).zip(col.chunks_exact(4));
        for (s, c) in chunks.by_ref() {
            one |= (s[0] & c[0]) | (s[1] & c[1]) | (s[2] & c[2]) | (s[3] & c[3]);
            zero |= (s[0] & !c[0]) | (s[1] & !c[1]) | (s[2] & !c[2]) | (s[3] & !c[3]);
            if one != 0 && zero != 0 {
                return ColumnSignals {
                    any_one: true,
                    any_zero: true,
                };
            }
        }
        let (s_rem, c_rem) = (sel.chunks_exact(4), col.chunks_exact(4));
        for (&s, &c) in s_rem.remainder().iter().zip(c_rem.remainder()) {
            one |= s & c;
            zero |= s & !c;
        }
        ColumnSignals {
            any_one: one != 0,
            any_zero: zero != 0,
        }
    }

    /// The match vector for column `pos` against reference bit `keep`,
    /// written into the caller-provided scratch bitmap — the
    /// zero-allocation form: `out = select & column` (`keep`) or
    /// `select & !column` (`!keep`), word-parallel.
    ///
    /// # Panics
    ///
    /// Panics if `pos >= 64` or `out.len()` differs from the row count.
    pub fn match_vector_into(&self, pos: u16, keep: bool, out: &mut Bitmap) {
        let col = &self.cols[pos as usize];
        if keep {
            out.assign_and(&self.select, col);
        } else {
            out.assign_and_not(&self.select, col);
        }
    }

    /// The match vector for column `pos` against reference bit `keep`:
    /// selected rows whose cell XNORs true with the reference. Allocating
    /// convenience form of [`Array::match_vector_into`].
    pub fn match_vector(&self, pos: u16, keep: bool) -> Bitmap {
        let mut matches = Bitmap::zeros(self.rows.len());
        self.match_vector_into(pos, keep, &mut matches);
        matches
    }

    /// Loads the match vector into the select latches (selective row
    /// exclusion, §IV-A.2). Returns the number of rows deselected.
    pub fn load_select(&mut self, matches: &Bitmap) -> usize {
        let removed = self.select.and_assign_count_removed(matches);
        self.selected -= removed;
        removed
    }

    /// Fused match-and-load (§IV-A.2): because `select &= select & col`
    /// simplifies to `select &= col`, the global exclusion needs no match
    /// vector at all — one in-place AND/ANDN over the select words.
    /// Semantically identical to `load_select(&match_vector(pos, keep))`.
    /// Returns the number of rows deselected.
    ///
    /// # Panics
    ///
    /// Panics if `pos >= 64`.
    pub fn apply_exclusion(&mut self, pos: u16, keep: bool) -> usize {
        let col = &self.cols[pos as usize];
        let removed = if keep {
            self.select.and_assign_count_removed(col)
        } else {
            self.select.and_not_assign_count_removed(col)
        };
        self.selected -= removed;
        removed
    }

    /// Scalar row-major `sense_column` — the differential oracle for the
    /// bit-sliced path, kept alive under the `scalar-oracle` feature (and
    /// in tests). Walks selected rows one at a time through
    /// [`Array::read_row`], exactly the pre-shadow implementation.
    #[cfg(any(test, feature = "scalar-oracle"))]
    pub fn sense_column_scalar(&self, pos: u16) -> ColumnSignals {
        let mut signals = ColumnSignals::default();
        for row in self.select.iter_ones() {
            if self.read_row(row) >> pos & 1 == 1 {
                signals.any_one = true;
            } else {
                signals.any_zero = true;
            }
            if signals.any_one && signals.any_zero {
                break;
            }
        }
        signals
    }

    /// Scalar row-major `match_vector` — differential oracle counterpart
    /// of [`Array::match_vector`] (see [`Array::sense_column_scalar`]).
    #[cfg(any(test, feature = "scalar-oracle"))]
    pub fn match_vector_scalar(&self, pos: u16, keep: bool) -> Bitmap {
        let mut matches = Bitmap::zeros(self.rows.len());
        for row in self.select.iter_ones() {
            if (self.read_row(row) >> pos & 1 == 1) == keep {
                matches.set(row, true);
            }
        }
        matches
    }

    /// Lowest selected row, if any (the array's contribution to the
    /// H-tree priority index).
    pub fn first_selected(&self) -> Option<usize> {
        self.select.first_one()
    }

    /// Snapshots the array's durable state (raw rows, wear, faults).
    /// Select latches are volatile and excluded — see [`ArrayState`].
    pub fn state(&self) -> ArrayState {
        ArrayState {
            rows: self.rows.clone(),
            wear: self.wear.clone(),
            faults: self.faults.clone(),
        }
    }

    /// Rebuilds an array from a snapshot: rows, wear, and faults are
    /// installed verbatim (no wear is induced — this models power-up of
    /// nonvolatile cells, not writes), the column shadow is re-transposed
    /// through the fault list, and the select latches come up cleared.
    ///
    /// Returns `None` when the snapshot is internally inconsistent
    /// (mismatched lengths or out-of-range fault coordinates).
    pub fn from_state(state: &ArrayState) -> Option<Array> {
        let rows = state.rows.len();
        if state.wear.len() != rows {
            return None;
        }
        if state
            .faults
            .iter()
            .any(|&(r, b, _)| r >= rows || b >= KEY_BITS as u16)
        {
            return None;
        }
        let mut array = Array {
            rows: state.rows.clone(),
            cols: (0..KEY_BITS).map(|_| Bitmap::zeros(rows)).collect(),
            select: Bitmap::zeros(rows),
            selected: 0,
            wear: state.wear.clone(),
            faults: state.faults.clone(),
        };
        for row in 0..rows {
            array.sync_row(row);
        }
        Some(array)
    }

    /// Per-row write counts for the endurance study.
    pub fn wear(&self) -> &[u32] {
        &self.wear
    }

    /// The most-written row's write count.
    pub fn max_wear(&self) -> u32 {
        self.wear.iter().copied().max().unwrap_or(0)
    }

    /// Total writes absorbed by the array.
    pub fn total_writes(&self) -> u64 {
        self.wear.iter().map(|&w| w as u64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn array_with(values: &[u64]) -> Array {
        let mut a = Array::new(values.len() as u32);
        for (row, &v) in values.iter().enumerate() {
            a.write_row(row, v);
            a.set_select_bit(row, true);
        }
        a
    }

    #[test]
    fn write_read_roundtrip() {
        let mut a = Array::new(4);
        a.write_row(2, 0xDEAD_BEEF);
        assert_eq!(a.read_row(2), 0xDEAD_BEEF);
        assert_eq!(a.read_row(0), 0);
    }

    #[test]
    fn sense_column_reports_mixed() {
        let a = array_with(&[0b10, 0b00, 0b11]);
        let s = a.sense_column(1);
        assert!(s.any_one && s.any_zero && !s.all_same());
        let s0 = a.sense_column(0);
        assert!(s0.any_one && s0.any_zero);
    }

    #[test]
    fn sense_column_uniform() {
        let a = array_with(&[0b1, 0b1, 0b1]);
        let s = a.sense_column(0);
        assert!(s.any_one && !s.any_zero && s.all_same());
    }

    #[test]
    fn sense_respects_selection() {
        let mut a = array_with(&[0b1, 0b0]);
        a.set_select_bit(1, false);
        let s = a.sense_column(0);
        assert!(
            s.any_one && !s.any_zero,
            "deselected row must not be sensed"
        );
    }

    #[test]
    fn empty_selection_is_silent() {
        let mut a = array_with(&[0b1]);
        a.clear_select();
        let s = a.sense_column(0);
        assert!(!s.any_one && !s.any_zero && s.all_same());
    }

    #[test]
    fn match_and_load_exclude_rows() {
        let mut a = array_with(&[0b10, 0b00, 0b11]);
        // keep rows with 0 in column 1 → only row 1 survives
        let m = a.match_vector(1, false);
        let removed = a.load_select(&m);
        assert_eq!(removed, 2);
        assert_eq!(a.first_selected(), Some(1));
    }

    #[test]
    fn wear_tracks_writes_only() {
        let mut a = Array::new(2);
        a.write_row(0, 1);
        a.write_row(0, 2);
        a.write_row(1, 3);
        let _ = a.read_row(0);
        let _ = a.sense_column(0);
        assert_eq!(a.wear(), &[2, 1]);
        assert_eq!(a.max_wear(), 2);
        assert_eq!(a.total_writes(), 3);
    }

    #[test]
    fn stuck_cell_overrides_writes() {
        let mut a = Array::new(2);
        a.write_row(0, 0b0000);
        a.inject_stuck_cell(0, 1, true);
        assert_eq!(a.read_row(0), 0b0010);
        a.write_row(0, 0b1111);
        a.inject_stuck_cell(0, 3, false);
        assert_eq!(a.read_row(0), 0b0111);
        assert_eq!(a.fault_count(), 2);
        a.clear_faults();
        assert_eq!(a.read_row(0), 0b1111);
    }

    #[test]
    fn faulty_cell_corrupts_column_search() {
        let mut a = array_with(&[0b10, 0b01]);
        // Row 1's MSB is stuck high: it now looks like 0b11.
        a.inject_stuck_cell(1, 1, true);
        let s = a.sense_column(1);
        assert!(s.any_one && !s.any_zero, "both rows sense 1 in column 1");
        let m = a.match_vector(1, true);
        assert_eq!(m.count_ones(), 2);
    }

    #[test]
    fn reinjecting_same_cell_replaces_fault() {
        let mut a = Array::new(1);
        a.inject_stuck_cell(0, 0, true);
        a.inject_stuck_cell(0, 0, false);
        assert_eq!(a.fault_count(), 1);
        a.write_row(0, 1);
        assert_eq!(a.read_row(0), 0);
    }

    #[test]
    fn bitsliced_matches_scalar_with_faults_and_partial_select() {
        // 70 rows so the select/column bitmaps span a word boundary.
        let mut a = Array::new(70);
        for row in 0..70 {
            a.write_row(row, (row as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            a.set_select_bit(row, row % 3 != 1);
        }
        a.inject_stuck_cell(0, 5, true);
        a.inject_stuck_cell(64, 63, false);
        a.inject_stuck_cell(69, 0, true);
        for pos in 0..64u16 {
            assert_eq!(
                a.sense_column(pos),
                a.sense_column_scalar(pos),
                "sense at {pos}"
            );
            for keep in [false, true] {
                assert_eq!(
                    a.match_vector(pos, keep),
                    a.match_vector_scalar(pos, keep),
                    "match at {pos}/{keep}"
                );
            }
        }
    }

    #[test]
    fn shadow_stays_coherent_through_fault_edits() {
        let mut a = Array::new(3);
        a.write_row(1, 0b101);
        a.inject_stuck_cell(1, 1, true); // effective 0b111
        assert!(a.match_vector(1, true).none());
        a.set_select_bit(1, true);
        assert_eq!(
            a.match_vector(1, true).iter_ones().collect::<Vec<_>>(),
            vec![1]
        );
        // Overwriting the row keeps the stuck bit visible in the shadow.
        a.write_row(1, 0);
        assert!(a.sense_column(1).any_one);
        // Clearing faults re-transposes the raw value.
        a.clear_faults();
        assert!(!a.sense_column(1).any_one);
    }

    #[test]
    fn fused_exclusion_equals_match_then_load() {
        let mut fused = Array::new(70);
        for row in 0..70 {
            fused.write_row(row, row as u64 ^ 0x55);
            fused.set_select_bit(row, row % 2 == 0);
        }
        let mut two_step = fused.clone();
        for (pos, keep) in [(0u16, false), (3, true), (6, false)] {
            let removed_fused = fused.apply_exclusion(pos, keep);
            let matches = two_step.match_vector(pos, keep);
            let removed_two = two_step.load_select(&matches);
            assert_eq!(removed_fused, removed_two, "removed at {pos}/{keep}");
            assert_eq!(fused.select(), two_step.select(), "select at {pos}/{keep}");
        }
    }

    #[test]
    fn match_vector_into_reuses_scratch() {
        let mut a = Array::new(5);
        for row in 0..5 {
            a.write_row(row, row as u64);
            a.set_select_bit(row, true);
        }
        let mut scratch = Bitmap::ones(5); // stale contents must be overwritten
        a.match_vector_into(0, true, &mut scratch);
        assert_eq!(scratch.iter_ones().collect::<Vec<_>>(), vec![1, 3]);
        a.match_vector_into(0, false, &mut scratch);
        assert_eq!(scratch.iter_ones().collect::<Vec<_>>(), vec![0, 2, 4]);
    }

    #[test]
    fn load_select_window_latches_slice() {
        let mut a = Array::new(8);
        let bits: Bitmap = (0..20).map(|i| i % 2 == 0).collect();
        a.load_select_window(&bits, 3);
        // Window [3, 11): even global indices 4, 6, 8, 10 → local 1, 3, 5, 7.
        assert_eq!(a.select().iter_ones().collect::<Vec<_>>(), vec![1, 3, 5, 7]);
    }

    #[test]
    fn snapshot_restore_is_bit_identical_without_wear() {
        let mut a = Array::new(70);
        for row in 0..70 {
            a.write_row(row, (row as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        }
        a.inject_stuck_cell(3, 7, true);
        a.inject_stuck_cell(64, 0, false);
        a.set_select_bit(5, true); // volatile; must NOT survive restore
        let restored = Array::from_state(&a.state()).unwrap();
        // Durable state is bit-identical: effective reads, wear, faults.
        for row in 0..70 {
            assert_eq!(restored.read_row(row), a.read_row(row), "row {row}");
        }
        assert_eq!(restored.wear(), a.wear());
        assert_eq!(restored.fault_count(), a.fault_count());
        // The column shadow was re-synced through the fault list.
        for pos in 0..64u16 {
            let mut all = restored.clone();
            let mut all_a = a.clone();
            for row in 0..70 {
                all.set_select_bit(row, true);
                all_a.set_select_bit(row, true);
            }
            assert_eq!(all.sense_column(pos), all_a.sense_column(pos), "{pos}");
        }
        // Select latches come up cleared; restore induced no wear.
        assert_eq!(restored.selected_count(), 0);
        assert_eq!(restored.total_writes(), a.total_writes());
    }

    #[test]
    fn from_state_rejects_inconsistent_snapshots() {
        let a = Array::new(4);
        let mut bad = a.state();
        bad.wear.pop();
        assert!(Array::from_state(&bad).is_none());
        let mut bad = a.state();
        bad.faults.push((9, 0, true)); // row out of range
        assert!(Array::from_state(&bad).is_none());
        let mut bad = a.state();
        bad.faults.push((0, 64, true)); // bit out of range
        assert!(Array::from_state(&bad).is_none());
    }

    #[test]
    fn cached_selected_count_tracks_every_mutator() {
        let mut a = Array::new(70);
        for row in 0..70 {
            a.write_row(row, row as u64 ^ 0xA5);
        }
        let check = |a: &Array, ctx: &str| {
            assert_eq!(a.selected_count(), a.select().count_ones(), "{ctx}");
        };
        check(&a, "new");
        a.set_select((0..70).map(|i| i % 2 == 0).collect());
        check(&a, "set_select");
        a.set_select_bit(1, true);
        a.set_select_bit(1, true); // idempotent set must not double-count
        a.set_select_bit(0, false);
        a.set_select_bit(0, false);
        check(&a, "set_select_bit");
        let bits: Bitmap = (0..140).map(|i| i % 3 != 0).collect();
        a.load_select_window(&bits, 35);
        check(&a, "load_select_window");
        let matches: Bitmap = (0..70).map(|i| i % 5 != 2).collect();
        a.load_select(&matches);
        check(&a, "load_select");
        a.apply_exclusion(3, true);
        check(&a, "apply_exclusion keep");
        a.apply_exclusion(2, false);
        check(&a, "apply_exclusion drop");
        let restored = Array::from_state(&a.state()).unwrap();
        check(&restored, "from_state");
        a.clear_select();
        check(&a, "clear_select");
    }

    #[test]
    fn signals_merge_is_or() {
        let mut s = ColumnSignals {
            any_one: true,
            any_zero: false,
        };
        s.merge(ColumnSignals {
            any_one: false,
            any_zero: true,
        });
        assert!(s.any_one && s.any_zero);
    }
}
