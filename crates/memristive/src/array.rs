//! A single 1T1R memristive array with RIME periphery (§IV-A, Fig. 7).
//!
//! Keys live one per wordline; the first `k` bitlines of a row hold the
//! key's bits (1 = low-resistance state, 0 = high-resistance state). The
//! RIME periphery adds, per array:
//!
//! * a **select vector** of per-wordline latches gating which rows
//!   participate in column searches,
//! * **column search**: drive one bitline, sense all selectlines, XNOR the
//!   sensed column with a 1-bit reference to form the **match vector**,
//! * the **all-0-or-1 logic** producing the `load` gate (modelled at the
//!   mat/chip level through the [`ColumnSignals`] the array reports).
//!
//! Writes are the only wear-inducing operation; the array tracks per-row
//! write counts for the §VII-C lifetime study.

use crate::bitmap::Bitmap;

/// Per-array outcome of sensing one column restricted to selected rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ColumnSignals {
    /// At least one selected cell in the column holds 1.
    pub any_one: bool,
    /// At least one selected cell in the column holds 0.
    pub any_zero: bool,
}

impl ColumnSignals {
    /// Whether every selected cell holds the same bit (or none is selected)
    /// — the *all 0 or 1* condition that vetoes a select-vector load.
    pub fn all_same(&self) -> bool {
        !(self.any_one && self.any_zero)
    }

    /// Merges signals from another array or mat (wired-OR upstream, Fig. 9).
    pub fn merge(&mut self, other: ColumnSignals) {
        self.any_one |= other.any_one;
        self.any_zero |= other.any_zero;
    }
}

/// One memristive array: `rows` key slots of up to 64 key bits each.
///
/// The array stores each row's key bits packed in a `u64` — bit-identical
/// to the cells the paper describes for key widths up to 64; columns past
/// the key width would hold unrelated data in normal-storage mode and are
/// not modelled.
#[derive(Debug, Clone)]
pub struct Array {
    rows: Vec<u64>,
    select: Bitmap,
    wear: Vec<u32>,
    /// Injected stuck-at cell faults: (row, bit, stuck value). Endurance
    /// failures manifest as cells stuck in one resistance state; the
    /// fault list lets tests exercise the periphery under such defects.
    faults: Vec<(usize, u16, bool)>,
}

impl Array {
    /// Creates an array of `rows` zeroed key slots with an empty selection.
    pub fn new(rows: u32) -> Array {
        let rows = rows as usize;
        Array {
            rows: vec![0; rows],
            select: Bitmap::zeros(rows),
            wear: vec![0; rows],
            faults: Vec::new(),
        }
    }

    /// Injects a stuck-at fault: the cell at (`row`, `bit`) permanently
    /// senses `stuck` regardless of what is written (worn-out RRAM cells
    /// freeze in one resistance state, §VII-C).
    pub fn inject_stuck_cell(&mut self, row: usize, bit: u16, stuck: bool) {
        assert!(row < self.rows.len(), "row {row} out of range");
        assert!(bit < 64, "bit {bit} out of range");
        self.faults.retain(|&(r, b, _)| (r, b) != (row, bit));
        self.faults.push((row, bit, stuck));
    }

    /// Removes all injected faults.
    pub fn clear_faults(&mut self) {
        self.faults.clear();
    }

    /// Number of injected faults.
    pub fn fault_count(&self) -> usize {
        self.faults.len()
    }

    fn effective(&self, row: usize) -> u64 {
        let mut raw = self.rows[row];
        for &(r, bit, stuck) in &self.faults {
            if r == row {
                if stuck {
                    raw |= 1 << bit;
                } else {
                    raw &= !(1 << bit);
                }
            }
        }
        raw
    }

    /// Number of key slots (wordlines).
    pub fn rows(&self) -> usize {
        self.rows.len()
    }

    /// Writes a raw key pattern into `row`, inducing one cell-line write.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range.
    pub fn write_row(&mut self, row: usize, raw: u64) {
        self.rows[row] = raw;
        self.wear[row] = self.wear[row].saturating_add(1);
    }

    /// Reads the raw key pattern stored in `row` (through any injected
    /// stuck-at faults).
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range.
    pub fn read_row(&self, row: usize) -> u64 {
        if self.faults.is_empty() {
            self.rows[row]
        } else {
            self.effective(row)
        }
    }

    /// The select vector (shared view; per-wordline latches).
    pub fn select(&self) -> &Bitmap {
        &self.select
    }

    /// Replaces the select vector wholesale (used by range initialization).
    ///
    /// # Panics
    ///
    /// Panics if the length differs from the row count.
    pub fn set_select(&mut self, select: Bitmap) {
        assert_eq!(select.len(), self.rows.len(), "select vector length");
        self.select = select;
    }

    /// Sets or clears one select latch.
    pub fn set_select_bit(&mut self, row: usize, value: bool) {
        self.select.set(row, value);
    }

    /// Clears the whole select vector.
    pub fn clear_select(&mut self) {
        self.select.clear();
    }

    /// Number of selected rows.
    pub fn selected_count(&self) -> usize {
        self.select.count_ones()
    }

    /// Senses column `pos` across the selected rows (Fig. 7): returns the
    /// per-array signals; the match vector itself is produced by
    /// [`Array::match_vector`] when the controller decides to load.
    pub fn sense_column(&self, pos: u16) -> ColumnSignals {
        let mut signals = ColumnSignals::default();
        for row in self.select.iter_ones() {
            if self.read_row(row) >> pos & 1 == 1 {
                signals.any_one = true;
            } else {
                signals.any_zero = true;
            }
            if signals.any_one && signals.any_zero {
                break;
            }
        }
        signals
    }

    /// The match vector for column `pos` against reference bit `keep`:
    /// selected rows whose cell XNORs true with the reference.
    pub fn match_vector(&self, pos: u16, keep: bool) -> Bitmap {
        let mut matches = Bitmap::zeros(self.rows.len());
        for row in self.select.iter_ones() {
            if (self.read_row(row) >> pos & 1 == 1) == keep {
                matches.set(row, true);
            }
        }
        matches
    }

    /// Loads the match vector into the select latches (selective row
    /// exclusion, §IV-A.2). Returns the number of rows deselected.
    pub fn load_select(&mut self, matches: &Bitmap) -> usize {
        let before = self.select.count_ones();
        self.select.and_assign(matches);
        before - self.select.count_ones()
    }

    /// Lowest selected row, if any (the array's contribution to the
    /// H-tree priority index).
    pub fn first_selected(&self) -> Option<usize> {
        self.select.first_one()
    }

    /// Per-row write counts for the endurance study.
    pub fn wear(&self) -> &[u32] {
        &self.wear
    }

    /// The most-written row's write count.
    pub fn max_wear(&self) -> u32 {
        self.wear.iter().copied().max().unwrap_or(0)
    }

    /// Total writes absorbed by the array.
    pub fn total_writes(&self) -> u64 {
        self.wear.iter().map(|&w| w as u64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn array_with(values: &[u64]) -> Array {
        let mut a = Array::new(values.len() as u32);
        for (row, &v) in values.iter().enumerate() {
            a.write_row(row, v);
            a.set_select_bit(row, true);
        }
        a
    }

    #[test]
    fn write_read_roundtrip() {
        let mut a = Array::new(4);
        a.write_row(2, 0xDEAD_BEEF);
        assert_eq!(a.read_row(2), 0xDEAD_BEEF);
        assert_eq!(a.read_row(0), 0);
    }

    #[test]
    fn sense_column_reports_mixed() {
        let a = array_with(&[0b10, 0b00, 0b11]);
        let s = a.sense_column(1);
        assert!(s.any_one && s.any_zero && !s.all_same());
        let s0 = a.sense_column(0);
        assert!(s0.any_one && s0.any_zero);
    }

    #[test]
    fn sense_column_uniform() {
        let a = array_with(&[0b1, 0b1, 0b1]);
        let s = a.sense_column(0);
        assert!(s.any_one && !s.any_zero && s.all_same());
    }

    #[test]
    fn sense_respects_selection() {
        let mut a = array_with(&[0b1, 0b0]);
        a.set_select_bit(1, false);
        let s = a.sense_column(0);
        assert!(
            s.any_one && !s.any_zero,
            "deselected row must not be sensed"
        );
    }

    #[test]
    fn empty_selection_is_silent() {
        let mut a = array_with(&[0b1]);
        a.clear_select();
        let s = a.sense_column(0);
        assert!(!s.any_one && !s.any_zero && s.all_same());
    }

    #[test]
    fn match_and_load_exclude_rows() {
        let mut a = array_with(&[0b10, 0b00, 0b11]);
        // keep rows with 0 in column 1 → only row 1 survives
        let m = a.match_vector(1, false);
        let removed = a.load_select(&m);
        assert_eq!(removed, 2);
        assert_eq!(a.first_selected(), Some(1));
    }

    #[test]
    fn wear_tracks_writes_only() {
        let mut a = Array::new(2);
        a.write_row(0, 1);
        a.write_row(0, 2);
        a.write_row(1, 3);
        let _ = a.read_row(0);
        let _ = a.sense_column(0);
        assert_eq!(a.wear(), &[2, 1]);
        assert_eq!(a.max_wear(), 2);
        assert_eq!(a.total_writes(), 3);
    }

    #[test]
    fn stuck_cell_overrides_writes() {
        let mut a = Array::new(2);
        a.write_row(0, 0b0000);
        a.inject_stuck_cell(0, 1, true);
        assert_eq!(a.read_row(0), 0b0010);
        a.write_row(0, 0b1111);
        a.inject_stuck_cell(0, 3, false);
        assert_eq!(a.read_row(0), 0b0111);
        assert_eq!(a.fault_count(), 2);
        a.clear_faults();
        assert_eq!(a.read_row(0), 0b1111);
    }

    #[test]
    fn faulty_cell_corrupts_column_search() {
        let mut a = array_with(&[0b10, 0b01]);
        // Row 1's MSB is stuck high: it now looks like 0b11.
        a.inject_stuck_cell(1, 1, true);
        let s = a.sense_column(1);
        assert!(s.any_one && !s.any_zero, "both rows sense 1 in column 1");
        let m = a.match_vector(1, true);
        assert_eq!(m.count_ones(), 2);
    }

    #[test]
    fn reinjecting_same_cell_replaces_fault() {
        let mut a = Array::new(1);
        a.inject_stuck_cell(0, 0, true);
        a.inject_stuck_cell(0, 0, false);
        assert_eq!(a.fault_count(), 1);
        a.write_row(0, 1);
        assert_eq!(a.read_row(0), 0);
    }

    #[test]
    fn signals_merge_is_or() {
        let mut s = ColumnSignals {
            any_one: true,
            any_zero: false,
        };
        s.merge(ColumnSignals {
            any_one: false,
            any_zero: true,
        });
        assert!(s.any_one && s.any_zero);
    }
}
