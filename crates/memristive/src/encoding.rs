//! Number formats RIME ranks natively (§III-A).
//!
//! RIME stores keys in their *native* binary representation — unsigned or
//! two's-complement fixed point, or IEEE-754 floating point — and adapts the
//! bit-serial search schedule to the format rather than re-encoding data
//! ("No data conversion is required", §VI-C). [`KeyFormat`] captures the
//! format and width; [`SortableBits`] maps Rust primitive keys onto raw bit
//! patterns and defines the total order the hardware realizes, which for
//! floats coincides with [`f32::total_cmp`]/[`f64::total_cmp`].

use std::cmp::Ordering;
use std::fmt;

/// The interpretation of a stored bit pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FormatKind {
    /// Unsigned fixed point: `b(α−1)…b0 . b(−1)…b(−β)` (§III-A.1).
    Unsigned,
    /// Two's-complement signed fixed point (§III-A.2).
    Signed,
    /// IEEE-754 floating point: sign, biased exponent, fraction (§III-A.3).
    Float,
}

/// A key format: interpretation plus bit width `k = α + β`.
///
/// Fraction bits never change *ordering* — a fixed-point value with β
/// fraction bits orders identically to the α+β-bit integer holding the same
/// pattern — so the format only records the split for display purposes.
///
/// # Example
///
/// ```
/// use rime_memristive::KeyFormat;
///
/// let q3_2 = KeyFormat::unsigned_fixed(3, 2); // the Fig. 4 format
/// assert_eq!(q3_2.bits(), 5);
/// assert_eq!(KeyFormat::FLOAT32.bits(), 32);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct KeyFormat {
    kind: FormatKind,
    int_bits: u16,
    frac_bits: u16,
}

impl KeyFormat {
    /// 32-bit unsigned integers.
    pub const UNSIGNED32: KeyFormat = KeyFormat {
        kind: FormatKind::Unsigned,
        int_bits: 32,
        frac_bits: 0,
    };
    /// 64-bit unsigned integers.
    pub const UNSIGNED64: KeyFormat = KeyFormat {
        kind: FormatKind::Unsigned,
        int_bits: 64,
        frac_bits: 0,
    };
    /// 32-bit two's-complement integers.
    pub const SIGNED32: KeyFormat = KeyFormat {
        kind: FormatKind::Signed,
        int_bits: 32,
        frac_bits: 0,
    };
    /// 64-bit two's-complement integers.
    pub const SIGNED64: KeyFormat = KeyFormat {
        kind: FormatKind::Signed,
        int_bits: 64,
        frac_bits: 0,
    };
    /// IEEE-754 binary32.
    pub const FLOAT32: KeyFormat = KeyFormat {
        kind: FormatKind::Float,
        int_bits: 32,
        frac_bits: 0,
    };
    /// IEEE-754 binary64.
    pub const FLOAT64: KeyFormat = KeyFormat {
        kind: FormatKind::Float,
        int_bits: 64,
        frac_bits: 0,
    };

    /// Unsigned fixed point with `int_bits` integer and `frac_bits`
    /// fraction bits (α and β in §III-A.1).
    ///
    /// # Panics
    ///
    /// Panics if the total width is zero or exceeds 64 bits.
    pub fn unsigned_fixed(int_bits: u16, frac_bits: u16) -> KeyFormat {
        let k = int_bits + frac_bits;
        assert!(
            (1..=64).contains(&k),
            "key width must be in 1..=64, got {k}"
        );
        KeyFormat {
            kind: FormatKind::Unsigned,
            int_bits,
            frac_bits,
        }
    }

    /// Two's-complement signed fixed point with `int_bits` integer bits
    /// (including the sign bit) and `frac_bits` fraction bits.
    ///
    /// # Panics
    ///
    /// Panics if the total width is zero or exceeds 64 bits.
    pub fn signed_fixed(int_bits: u16, frac_bits: u16) -> KeyFormat {
        let k = int_bits + frac_bits;
        assert!(
            (2..=64).contains(&k),
            "signed key width must be in 2..=64, got {k}"
        );
        KeyFormat {
            kind: FormatKind::Signed,
            int_bits,
            frac_bits,
        }
    }

    /// The format's interpretation.
    pub fn kind(&self) -> FormatKind {
        self.kind
    }

    /// Total key width `k` in bits.
    pub fn bits(&self) -> u16 {
        self.int_bits + self.frac_bits
    }

    /// Number of fraction bits β (zero for integers and floats).
    pub fn frac_bits(&self) -> u16 {
        self.frac_bits
    }

    /// Short static name used in diagnostics.
    pub fn name(&self) -> &'static str {
        match self.kind {
            FormatKind::Unsigned => "unsigned",
            FormatKind::Signed => "signed",
            FormatKind::Float => "float",
        }
    }

    /// Compares two raw `k`-bit patterns under this format's value order.
    ///
    /// This is the ground truth the hardware model is tested against. For
    /// floats the order is the IEEE-754 *total order* (sign-magnitude),
    /// which is what the bit-serial algorithm realizes.
    pub fn compare_bits(&self, a: u64, b: u64) -> Ordering {
        let k = self.bits() as u32;
        let a = mask_to(a, k);
        let b = mask_to(b, k);
        match self.kind {
            FormatKind::Unsigned => a.cmp(&b),
            FormatKind::Signed => sign_extend(a, k).cmp(&sign_extend(b, k)),
            FormatKind::Float => {
                // IEEE total order: flip the sign bit for non-negatives,
                // complement for negatives; then compare unsigned.
                total_order_key(a, k).cmp(&total_order_key(b, k))
            }
        }
    }

    /// Extracts bit `pos` (0 = LSB) from a raw pattern.
    pub fn bit(&self, raw: u64, pos: u16) -> bool {
        debug_assert!(pos < self.bits());
        raw >> pos & 1 == 1
    }
}

impl fmt::Display for KeyFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            FormatKind::Float => write!(f, "float{}", self.bits()),
            FormatKind::Unsigned if self.frac_bits > 0 => {
                write!(f, "uq{}.{}", self.int_bits, self.frac_bits)
            }
            FormatKind::Unsigned => write!(f, "u{}", self.bits()),
            FormatKind::Signed if self.frac_bits > 0 => {
                write!(f, "q{}.{}", self.int_bits, self.frac_bits)
            }
            FormatKind::Signed => write!(f, "i{}", self.bits()),
        }
    }
}

fn mask_to(raw: u64, k: u32) -> u64 {
    if k >= 64 {
        raw
    } else {
        raw & ((1u64 << k) - 1)
    }
}

fn sign_extend(raw: u64, k: u32) -> i64 {
    let shift = 64 - k;
    ((raw << shift) as i64) >> shift
}

fn total_order_key(raw: u64, k: u32) -> u64 {
    let sign = 1u64 << (k - 1);
    if raw & sign == 0 {
        raw | sign
    } else {
        !raw & (if k >= 64 { u64::MAX } else { (1u64 << k) - 1 })
    }
}

/// Rust primitive keys RIME can store: the mapping between values and the
/// raw bit patterns held in memristive cells.
///
/// Implementations exist for `u8`–`u64`, `i8`–`i64`, `f32`, and `f64`.
/// The associated [`FORMAT`](SortableBits::FORMAT) tells the device which
/// search schedule to use.
///
/// # Example
///
/// ```
/// use rime_memristive::{KeyFormat, SortableBits};
///
/// assert_eq!(<f32 as SortableBits>::FORMAT, KeyFormat::FLOAT32);
/// assert_eq!(u32::from_raw_bits(7u32.to_raw_bits()), 7);
/// ```
pub trait SortableBits: Copy {
    /// The device format for this key type.
    const FORMAT: KeyFormat;

    /// Converts the value into the raw bit pattern stored in cells.
    fn to_raw_bits(self) -> u64;

    /// Reconstructs the value from a stored bit pattern.
    fn from_raw_bits(raw: u64) -> Self;
}

impl SortableBits for u8 {
    const FORMAT: KeyFormat = KeyFormat {
        kind: FormatKind::Unsigned,
        int_bits: 8,
        frac_bits: 0,
    };
    fn to_raw_bits(self) -> u64 {
        self as u64
    }
    fn from_raw_bits(raw: u64) -> Self {
        raw as u8
    }
}

impl SortableBits for u16 {
    const FORMAT: KeyFormat = KeyFormat {
        kind: FormatKind::Unsigned,
        int_bits: 16,
        frac_bits: 0,
    };
    fn to_raw_bits(self) -> u64 {
        self as u64
    }
    fn from_raw_bits(raw: u64) -> Self {
        raw as u16
    }
}

impl SortableBits for i8 {
    const FORMAT: KeyFormat = KeyFormat {
        kind: FormatKind::Signed,
        int_bits: 8,
        frac_bits: 0,
    };
    fn to_raw_bits(self) -> u64 {
        self as u8 as u64
    }
    fn from_raw_bits(raw: u64) -> Self {
        raw as u8 as i8
    }
}

impl SortableBits for i16 {
    const FORMAT: KeyFormat = KeyFormat {
        kind: FormatKind::Signed,
        int_bits: 16,
        frac_bits: 0,
    };
    fn to_raw_bits(self) -> u64 {
        self as u16 as u64
    }
    fn from_raw_bits(raw: u64) -> Self {
        raw as u16 as i16
    }
}

impl SortableBits for u32 {
    const FORMAT: KeyFormat = KeyFormat::UNSIGNED32;
    fn to_raw_bits(self) -> u64 {
        self as u64
    }
    fn from_raw_bits(raw: u64) -> Self {
        raw as u32
    }
}

impl SortableBits for u64 {
    const FORMAT: KeyFormat = KeyFormat::UNSIGNED64;
    fn to_raw_bits(self) -> u64 {
        self
    }
    fn from_raw_bits(raw: u64) -> Self {
        raw
    }
}

impl SortableBits for i32 {
    const FORMAT: KeyFormat = KeyFormat::SIGNED32;
    fn to_raw_bits(self) -> u64 {
        self as u32 as u64
    }
    fn from_raw_bits(raw: u64) -> Self {
        raw as u32 as i32
    }
}

impl SortableBits for i64 {
    const FORMAT: KeyFormat = KeyFormat::SIGNED64;
    fn to_raw_bits(self) -> u64 {
        self as u64
    }
    fn from_raw_bits(raw: u64) -> Self {
        raw as i64
    }
}

impl SortableBits for f32 {
    const FORMAT: KeyFormat = KeyFormat::FLOAT32;
    fn to_raw_bits(self) -> u64 {
        self.to_bits() as u64
    }
    fn from_raw_bits(raw: u64) -> Self {
        f32::from_bits(raw as u32)
    }
}

impl SortableBits for f64 {
    const FORMAT: KeyFormat = KeyFormat::FLOAT64;
    fn to_raw_bits(self) -> u64 {
        self.to_bits()
    }
    fn from_raw_bits(raw: u64) -> Self {
        f64::from_bits(raw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn widths() {
        assert_eq!(KeyFormat::UNSIGNED32.bits(), 32);
        assert_eq!(KeyFormat::SIGNED64.bits(), 64);
        assert_eq!(KeyFormat::unsigned_fixed(3, 2).bits(), 5);
        assert_eq!(KeyFormat::signed_fixed(4, 4).bits(), 8);
    }

    #[test]
    #[should_panic(expected = "key width")]
    fn zero_width_rejected() {
        KeyFormat::unsigned_fixed(0, 0);
    }

    #[test]
    fn unsigned_compare_matches_integer_order() {
        let fmt = KeyFormat::unsigned_fixed(3, 2);
        // Fig. 4 values: 4.00=10000, 1.75=00111, 1.25=00101, 1.00=00100, 6.50=11010
        let vals = [0b10000u64, 0b00111, 0b00101, 0b00100, 0b11010];
        let min = vals
            .iter()
            .copied()
            .min_by(|a, b| fmt.compare_bits(*a, *b))
            .unwrap();
        assert_eq!(min, 0b00100); // 1.00
    }

    #[test]
    fn signed_compare_matches_i64_order() {
        let fmt = KeyFormat::SIGNED32;
        let pairs = [(-5i32, 3i32), (-1, -8), (0, -0), (i32::MIN, i32::MAX)];
        for (a, b) in pairs {
            assert_eq!(
                fmt.compare_bits(a.to_raw_bits(), b.to_raw_bits()),
                a.cmp(&b),
                "compare {a} vs {b}"
            );
        }
    }

    #[test]
    fn signed_fixed_narrow_width() {
        let fmt = KeyFormat::signed_fixed(4, 0);
        // 4-bit two's complement: -8=1000, -1=1111, 3=0011
        assert_eq!(fmt.compare_bits(0b1000, 0b1111), Ordering::Less);
        assert_eq!(fmt.compare_bits(0b1111, 0b0011), Ordering::Less);
        assert_eq!(fmt.compare_bits(0b0011, 0b0011), Ordering::Equal);
    }

    #[test]
    fn float_compare_matches_total_cmp() {
        let fmt = KeyFormat::FLOAT32;
        let vals = [
            18.0f32,
            -1.625,
            -0.75,
            0.0,
            -0.0,
            f32::INFINITY,
            f32::NEG_INFINITY,
            1e-9,
        ];
        for &a in &vals {
            for &b in &vals {
                assert_eq!(
                    fmt.compare_bits(a.to_raw_bits(), b.to_raw_bits()),
                    a.total_cmp(&b),
                    "compare {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn float64_compare_matches_total_cmp() {
        let fmt = KeyFormat::FLOAT64;
        let vals = [1.5f64, -2.25, 0.0, -0.0, f64::MAX, f64::MIN];
        for &a in &vals {
            for &b in &vals {
                assert_eq!(
                    fmt.compare_bits(a.to_raw_bits(), b.to_raw_bits()),
                    a.total_cmp(&b)
                );
            }
        }
    }

    #[test]
    fn raw_bits_roundtrip() {
        assert_eq!(i32::from_raw_bits((-7i32).to_raw_bits()), -7);
        assert_eq!(i64::from_raw_bits(i64::MIN.to_raw_bits()), i64::MIN);
        assert_eq!(f64::from_raw_bits((-0.5f64).to_raw_bits()), -0.5);
        assert_eq!(u64::from_raw_bits(u64::MAX.to_raw_bits()), u64::MAX);
    }

    #[test]
    fn narrow_integer_roundtrips_and_formats() {
        assert_eq!(u8::from_raw_bits(200u8.to_raw_bits()), 200);
        assert_eq!(i8::from_raw_bits((-100i8).to_raw_bits()), -100);
        assert_eq!(u16::from_raw_bits(50_000u16.to_raw_bits()), 50_000);
        assert_eq!(i16::from_raw_bits(i16::MIN.to_raw_bits()), i16::MIN);
        assert_eq!(<u8 as SortableBits>::FORMAT.bits(), 8);
        assert_eq!(<i16 as SortableBits>::FORMAT.bits(), 16);
        // Order preservation for the signed narrow types.
        let fmt = <i8 as SortableBits>::FORMAT;
        assert_eq!(
            fmt.compare_bits((-5i8).to_raw_bits(), 3i8.to_raw_bits()),
            std::cmp::Ordering::Less
        );
    }

    #[test]
    fn display_names() {
        assert_eq!(KeyFormat::FLOAT32.to_string(), "float32");
        assert_eq!(KeyFormat::UNSIGNED64.to_string(), "u64");
        assert_eq!(KeyFormat::unsigned_fixed(3, 2).to_string(), "uq3.2");
        assert_eq!(KeyFormat::signed_fixed(4, 4).to_string(), "q4.4");
        assert_eq!(KeyFormat::SIGNED32.to_string(), "i32");
    }
}
