//! # rime-memristive
//!
//! Bit-accurate functional and timing model of the RIME memristive
//! ranking-in-memory substrate from *Memristive Data Ranking* (HPCA 2021).
//!
//! The crate models the full hardware stack described in §III–IV of the
//! paper, bottom-up:
//!
//! * [`bitmap`] — dense bit vectors used for select vectors, match vectors,
//!   and exclusion flags.
//! * [`encoding`] — the number formats RIME ranks natively: unsigned and
//!   signed fixed-point and IEEE-754 floating point ([`KeyFormat`]).
//! * [`plan`] — the bit-serial search schedule ([`SearchPlan`]): which
//!   reference bit each column-search step uses, for min or max, per format.
//! * [`mod@reference`] — a pure-software golden model of Algorithm 1 and its
//!   signed/float variants, used to cross-check the hardware model.
//! * [`mod@array`] — a single 1T1R memristive array with a select vector,
//!   column search, match-vector generation, and the *all-0-or-1* load
//!   gate (Fig. 7).
//! * [`mat`] — four arrays sharing sense/drive circuitry plus the mat
//!   controller (Fig. 8).
//! * [`htree`] — the bidirectional data/index H-tree: priority-encoded
//!   index reduction (Fig. 10) and select-vector initialization by address
//!   range (Fig. 11).
//! * [`chip`] — banks, subbanks, and mats under a chip controller that
//!   coordinates multi-mat exclusion with the two-signal protocol (Fig. 9)
//!   and streams ranked values.
//! * [`pool`] — the persistent mat-shard worker pool the chip controller
//!   drives with epoch-tagged step broadcasts (the model's standing
//!   concurrency, mirroring always-on hardware mats).
//! * [`probe`] — zero-cost-when-disabled observation hooks for extraction
//!   phases and pool activity (rime-core's metrics layer plugs in here).
//! * [`timing`] / [`counters`] — Table I device timings and energy, and
//!   the typed event counters every operation increments.
//! * [`lifetime`] — write-endurance tracking and lifetime estimation
//!   (§VII-C).
//! * [`selftest`] — a march-test BIST locating worn-out (stuck) cells
//!   plus a functional check of the ranking datapath.
//! * [`storage`] — the byte-addressable normal-storage-mode datapath a
//!   non-RIME DIMM serves (§V).
//! * [`verify`] — exhaustive model checking of the search schedule
//!   against comparison-based ground truth.
//!
//! # Example
//!
//! Rank three floats in a single chip and stream them out in ascending
//! order:
//!
//! ```
//! use rime_memristive::{Chip, ChipGeometry, Direction, KeyFormat};
//!
//! # fn main() -> Result<(), rime_memristive::Error> {
//! let mut chip = Chip::new(ChipGeometry::small());
//! let keys = [18.0f32, -1.625, -0.75];
//! let bits: Vec<u64> = keys.iter().map(|k| k.to_bits() as u64).collect();
//! chip.store_keys(0, &bits, KeyFormat::FLOAT32)?;
//! chip.init_range(0, keys.len() as u64, KeyFormat::FLOAT32)?;
//!
//! let mut sorted = Vec::new();
//! while let Some(hit) = chip.extract(Direction::Min)? {
//!     sorted.push(f32::from_bits(hit.raw_bits as u32));
//! }
//! assert_eq!(sorted, vec![-1.625, -0.75, 18.0]);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod array;
pub mod bitmap;
pub mod chip;
pub mod counters;
pub mod encoding;
pub mod error;
pub mod geometry;
pub mod htree;
pub mod lifetime;
pub mod mat;
pub mod plan;
pub mod pool;
pub mod probe;
pub mod reference;
pub mod selftest;
pub mod storage;
pub mod timing;
pub mod verify;

pub use array::{Array, ArrayState};
pub use bitmap::Bitmap;
pub use chip::{Chip, ChipState, ExtractHit, ParallelPolicy};
pub use counters::OpCounters;
pub use encoding::{KeyFormat, SortableBits};
pub use error::Error;
pub use geometry::ChipGeometry;
pub use htree::IndexTree;
pub use lifetime::EnduranceTracker;
pub use mat::{Mat, MatCommand, MatResponse, MatState};
pub use plan::{Direction, SearchPlan};
pub use pool::{pool_calibration, MatPool, PoolCalibration};
pub use probe::{ExtractionProbe, Phase, SharedProbe};
pub use selftest::{march_test, SelfTestReport};
pub use storage::NormalStorageView;
pub use timing::ArrayTiming;
