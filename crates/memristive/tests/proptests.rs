//! Property-based tests for the memristive substrate: the bit-serial
//! hardware model must agree with ordinary comparison-based ranking for
//! every format, and the H-tree must behave as a priority encoder.

use proptest::prelude::*;
use rime_memristive::reference::{
    algorithm1_unsigned_min, extreme_row, extreme_row_by_compare, run_plan,
};
use rime_memristive::{
    Bitmap, Chip, ChipGeometry, Direction, IndexTree, KeyFormat, SearchPlan, SortableBits,
};

fn full(n: usize) -> Bitmap {
    Bitmap::ones(n)
}

fn sort_on_chip<T: SortableBits>(keys: &[T], direction: Direction) -> Vec<u64> {
    let mut chip = Chip::new(ChipGeometry::small());
    let raw: Vec<u64> = keys.iter().map(|k| k.to_raw_bits()).collect();
    chip.store_keys(0, &raw, T::FORMAT).unwrap();
    chip.init_range(0, keys.len() as u64, T::FORMAT).unwrap();
    let mut out = Vec::new();
    while let Some(hit) = chip.extract(direction).unwrap() {
        out.push(hit.raw_bits);
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn chip_sorts_u32_like_std(keys in prop::collection::vec(any::<u32>(), 1..40)) {
        let got = sort_on_chip(&keys, Direction::Min);
        let mut want = keys.clone();
        want.sort_unstable();
        prop_assert_eq!(got, want.iter().map(|k| *k as u64).collect::<Vec<_>>());
    }

    #[test]
    fn chip_sorts_i64_like_std(keys in prop::collection::vec(any::<i64>(), 1..40)) {
        let got = sort_on_chip(&keys, Direction::Min);
        let mut want = keys.clone();
        want.sort_unstable();
        prop_assert_eq!(got, want.iter().map(|k| k.to_raw_bits()).collect::<Vec<_>>());
    }

    #[test]
    fn chip_sorts_f32_like_total_cmp(keys in prop::collection::vec(any::<f32>(), 1..40)) {
        let got = sort_on_chip(&keys, Direction::Min);
        let mut want = keys.clone();
        want.sort_unstable_by(f32::total_cmp);
        prop_assert_eq!(got, want.iter().map(|k| k.to_raw_bits()).collect::<Vec<_>>());
    }

    #[test]
    fn chip_sorts_f64_descending_with_max(keys in prop::collection::vec(any::<f64>(), 1..32)) {
        let got = sort_on_chip(&keys, Direction::Max);
        let mut want = keys.clone();
        want.sort_unstable_by(|a, b| b.total_cmp(a));
        prop_assert_eq!(got, want.iter().map(|k| k.to_raw_bits()).collect::<Vec<_>>());
    }

    #[test]
    fn plan_min_matches_compare_u64(keys in prop::collection::vec(any::<u64>(), 1..64)) {
        let plan = SearchPlan::new(KeyFormat::UNSIGNED64, Direction::Min);
        let got = extreme_row(&plan, &keys, &full(keys.len()));
        let want = extreme_row_by_compare(KeyFormat::UNSIGNED64, true, &keys, &full(keys.len()));
        prop_assert_eq!(got, want);
    }

    #[test]
    fn plan_max_matches_compare_f64(vals in prop::collection::vec(any::<f64>(), 1..64)) {
        let keys: Vec<u64> = vals.iter().map(|v| v.to_raw_bits()).collect();
        let plan = SearchPlan::new(KeyFormat::FLOAT64, Direction::Max);
        let got = extreme_row(&plan, &keys, &full(keys.len()));
        let want = extreme_row_by_compare(KeyFormat::FLOAT64, false, &keys, &full(keys.len()));
        prop_assert_eq!(got, want);
    }

    #[test]
    fn generalized_plan_equals_literal_algorithm1(
        keys in prop::collection::vec(0u64..256, 1..64),
    ) {
        let lit = algorithm1_unsigned_min(&keys, 8, &full(keys.len()));
        let plan = SearchPlan::new(KeyFormat::unsigned_fixed(8, 0), Direction::Min);
        let gen = run_plan(&plan, &keys, &full(keys.len()));
        prop_assert_eq!(lit, gen);
    }

    #[test]
    fn survivors_are_exactly_the_ties(keys in prop::collection::vec(0u64..16, 1..48)) {
        let plan = SearchPlan::new(KeyFormat::unsigned_fixed(4, 0), Direction::Min);
        let set = run_plan(&plan, &keys, &full(keys.len()));
        let min = *keys.iter().min().unwrap();
        for (row, &key) in keys.iter().enumerate() {
            prop_assert_eq!(set.get(row), key == min, "row {}", row);
        }
    }

    #[test]
    fn htree_reduce_is_priority_encoder(
        hits in prop::collection::vec(prop::option::of(0u32..16), 1..32),
    ) {
        let mut tree = IndexTree::new(hits.len(), 16);
        let got = tree.reduce(&hits);
        let want = hits
            .iter()
            .enumerate()
            .find_map(|(mat, h)| h.map(|row| mat as u64 * 16 + row as u64));
        prop_assert_eq!(got, want);
    }

    #[test]
    fn htree_init_range_covers_exactly_the_range(
        n_mats in 1usize..16,
        spm in 1u64..32,
        a in 0u64..400,
        len in 1u64..120,
    ) {
        let cap = n_mats as u64 * spm;
        let begin = a % cap;
        let end = (begin + len).min(cap);
        prop_assume!(begin < end);
        let mut tree = IndexTree::new(n_mats, spm);
        let ranges = tree.init_range(begin, end);
        let mut covered: Vec<u64> = Vec::new();
        for r in &ranges {
            for local in r.start..r.end {
                covered.push(r.mat as u64 * spm + local as u64);
            }
        }
        covered.sort_unstable();
        let want: Vec<u64> = (begin..end).collect();
        prop_assert_eq!(covered, want);
    }

    #[test]
    fn rank_k_via_repeated_extraction(
        keys in prop::collection::vec(any::<u32>(), 1..32),
        k in 0usize..32,
    ) {
        prop_assume!(k < keys.len());
        let mut chip = Chip::new(ChipGeometry::small());
        let raw: Vec<u64> = keys.iter().map(|v| v.to_raw_bits()).collect();
        chip.store_keys(0, &raw, KeyFormat::UNSIGNED32).unwrap();
        chip.init_range(0, keys.len() as u64, KeyFormat::UNSIGNED32).unwrap();
        let mut hit = None;
        for _ in 0..=k {
            hit = chip.extract(Direction::Min).unwrap();
        }
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        prop_assert_eq!(hit.unwrap().raw_bits, sorted[k] as u64);
    }
}
