//! Differential properties for the bit-sliced column-search engine: the
//! transposed column shadow must be observationally identical to the
//! row-major scalar path it replaced (compiled here via the
//! `scalar-oracle` feature) — at array level (`sense_column`,
//! `match_vector`), and at chip level for whole `extract_batch` runs
//! (same slots, same raw bits, bit-identical [`OpCounters`]) across
//! formats, random select vectors, and injected stuck-at faults.

use proptest::prelude::*;
use rime_memristive::{Array, Chip, ChipGeometry, Direction, ParallelPolicy, SortableBits};

const ROWS: usize = 70; // spans a word boundary in every per-row bitmap

/// Builds an array with the given rows, select pattern, and faults —
/// exercising both representations through the same public mutators.
fn loaded_array(rows: &[u64], select: &[bool], faults: &[(usize, u16, bool)]) -> Array {
    let mut a = Array::new(rows.len() as u32);
    for (row, &raw) in rows.iter().enumerate() {
        a.write_row(row, raw);
    }
    for (row, &sel) in select.iter().enumerate() {
        a.set_select_bit(row, sel);
    }
    for &(row, bit, stuck) in faults {
        a.inject_stuck_cell(row % rows.len(), bit % 64, stuck);
    }
    a
}

/// A geometry with `mats` mats of 32 slots each (1 bank, 1 subbank).
fn geometry(mats: u16) -> ChipGeometry {
    ChipGeometry {
        banks: 1,
        subbanks_per_bank: 1,
        mats_per_subbank: mats,
        arrays_per_mat: 4,
        rows: 8,
        cols: 64,
    }
}

/// Two chips loaded identically — one bit-sliced, one scalar oracle —
/// with the same stuck-at faults injected into both.
fn chip_pair<T: SortableBits>(keys: &[T], mats: u16, faults: &[(u64, u16, bool)]) -> (Chip, Chip) {
    let raw: Vec<u64> = keys.iter().map(|v| v.to_raw_bits()).collect();
    let build = |scalar: bool| {
        let mut chip = Chip::new(geometry(mats));
        chip.set_scalar_oracle(scalar);
        chip.set_parallel_policy(ParallelPolicy::Sequential);
        chip.store_keys(0, &raw, T::FORMAT).unwrap();
        for &(slot, bit, stuck) in faults {
            chip.inject_stuck_cell(slot % raw.len() as u64, bit % T::FORMAT.bits(), stuck)
                .unwrap();
        }
        chip.init_range(0, raw.len() as u64, T::FORMAT).unwrap();
        chip
    };
    (build(false), build(true))
}

/// Drains both chips through `extract_batch` and asserts hits and
/// counters are bit-identical.
fn assert_chips_agree(
    mut bitsliced: Chip,
    mut scalar: Chip,
    direction: Direction,
    k: usize,
) -> Result<(), TestCaseError> {
    let a = bitsliced.extract_batch(direction, k).unwrap();
    let b = scalar.extract_batch(direction, k).unwrap();
    prop_assert_eq!(a, b, "hit streams must be identical");
    prop_assert_eq!(
        bitsliced.counters(),
        scalar.counters(),
        "OpCounters must be bit-identical"
    );
    // Single-key continuation stays in lockstep too.
    prop_assert_eq!(
        bitsliced.extract(direction).unwrap(),
        scalar.extract(direction).unwrap()
    );
    prop_assert_eq!(bitsliced.counters(), scalar.counters());
    Ok(())
}

/// Zips independently generated fault component vectors (the proptest
/// shim has no tuple strategies); the count is driven by `rows`.
fn zip_faults(rows: &[usize], bits: &[u16], stuck: &[bool]) -> Vec<(usize, u16, bool)> {
    rows.iter()
        .zip(bits)
        .zip(stuck)
        .map(|((&r, &b), &s)| (r, b, s))
        .collect()
}

/// Chip-level counterpart of [`zip_faults`] (global slot addresses).
fn zip_chip_faults(slots: &[u64], bits: &[u16], stuck: &[bool]) -> Vec<(u64, u16, bool)> {
    slots
        .iter()
        .zip(bits)
        .zip(stuck)
        .map(|((&sl, &b), &s)| (sl, b, s))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn array_sense_and_match_agree(
        rows in prop::collection::vec(any::<u64>(), ROWS..=ROWS),
        select in prop::collection::vec(any::<bool>(), ROWS..=ROWS),
        fault_rows in prop::collection::vec(0usize..ROWS, 0..6),
        fault_bits in prop::collection::vec(0u16..64, 6..=6),
        fault_stuck in prop::collection::vec(any::<bool>(), 6..=6),
        pos in 0u16..64,
    ) {
        let faults = zip_faults(&fault_rows, &fault_bits, &fault_stuck);
        let a = loaded_array(&rows, &select, &faults);
        prop_assert_eq!(a.sense_column(pos), a.sense_column_scalar(pos));
        for keep in [false, true] {
            prop_assert_eq!(
                a.match_vector(pos, keep),
                a.match_vector_scalar(pos, keep),
                "keep = {}", keep
            );
        }
    }

    #[test]
    fn array_exclusion_cascade_agrees(
        rows in prop::collection::vec(any::<u64>(), ROWS..=ROWS),
        select in prop::collection::vec(any::<bool>(), ROWS..=ROWS),
        fault_rows in prop::collection::vec(0usize..ROWS, 0..4),
        fault_bits in prop::collection::vec(0u16..64, 4..=4),
        fault_stuck in prop::collection::vec(any::<bool>(), 4..=4),
        schedule_pos in prop::collection::vec(0u16..64, 1..16),
        schedule_keep in prop::collection::vec(any::<bool>(), 16..=16),
    ) {
        let faults = zip_faults(&fault_rows, &fault_bits, &fault_stuck);
        let schedule: Vec<(u16, bool)> = schedule_pos
            .iter()
            .copied()
            .zip(schedule_keep.iter().copied())
            .collect();
        // Apply a whole exclusion schedule through the fused bit-sliced
        // path and the scalar match+load two-step; the select vectors
        // must never diverge.
        let mut fused = loaded_array(&rows, &select, &faults);
        let mut twostep = fused.clone();
        for &(pos, keep) in &schedule {
            let removed_fused = fused.apply_exclusion(pos, keep);
            let matches = twostep.match_vector_scalar(pos, keep);
            let removed_two = twostep.load_select(&matches);
            prop_assert_eq!(removed_fused, removed_two);
            prop_assert_eq!(fused.select(), twostep.select());
            prop_assert_eq!(fused.first_selected(), twostep.first_selected());
        }
    }

    #[test]
    fn unsigned_chip_paths_agree(
        keys in prop::collection::vec(any::<u64>(), 1..96),
        mats in 1u16..4,
        fault_slots in prop::collection::vec(any::<u64>(), 0..5),
        fault_bits in prop::collection::vec(0u16..64, 5..=5),
        fault_stuck in prop::collection::vec(any::<bool>(), 5..=5),
        k in 0usize..100,
        max in any::<bool>(),
    ) {
        prop_assume!(keys.len() as u64 <= u64::from(mats) * 32);
        let direction = if max { Direction::Max } else { Direction::Min };
        let faults = zip_chip_faults(&fault_slots, &fault_bits, &fault_stuck);
        let (bitsliced, scalar) = chip_pair(&keys, mats, &faults);
        assert_chips_agree(bitsliced, scalar, direction, k)?;
    }

    #[test]
    fn signed_chip_paths_agree(
        keys in prop::collection::vec(any::<i32>(), 1..96),
        mats in 1u16..4,
        fault_slots in prop::collection::vec(any::<u64>(), 0..5),
        fault_bits in prop::collection::vec(0u16..32, 5..=5),
        fault_stuck in prop::collection::vec(any::<bool>(), 5..=5),
        k in 0usize..100,
    ) {
        prop_assume!(keys.len() as u64 <= u64::from(mats) * 32);
        let faults = zip_chip_faults(&fault_slots, &fault_bits, &fault_stuck);
        let (bitsliced, scalar) = chip_pair(&keys, mats, &faults);
        assert_chips_agree(bitsliced, scalar, Direction::Min, k)?;
    }

    #[test]
    fn float_chip_paths_agree(
        keys in prop::collection::vec(any::<f32>(), 1..96),
        mats in 1u16..4,
        fault_slots in prop::collection::vec(any::<u64>(), 0..5),
        fault_bits in prop::collection::vec(0u16..32, 5..=5),
        fault_stuck in prop::collection::vec(any::<bool>(), 5..=5),
        k in 0usize..100,
        max in any::<bool>(),
    ) {
        prop_assume!(keys.len() as u64 <= u64::from(mats) * 32);
        let direction = if max { Direction::Max } else { Direction::Min };
        let faults = zip_chip_faults(&fault_slots, &fault_bits, &fault_stuck);
        let (bitsliced, scalar) = chip_pair(&keys, mats, &faults);
        assert_chips_agree(bitsliced, scalar, direction, k)?;
    }

    #[test]
    fn fault_overlay_is_identical_through_both_paths(
        keys in prop::collection::vec(0u64..256, 4..64),
        slot in any::<u64>(),
        bit in 0u16..8,
        stuck in any::<bool>(),
    ) {
        // A fault that actually flips key bits must perturb both engines
        // the same way: drain everything and compare raw readouts.
        let (mut bitsliced, mut scalar) = chip_pair(&keys, 2, &[(slot, bit, stuck)]);
        let a = bitsliced.extract_batch(Direction::Min, keys.len() + 1).unwrap();
        let b = scalar.extract_batch(Direction::Min, keys.len() + 1).unwrap();
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(bitsliced.counters(), scalar.counters());
        // Both streams reflect the *faulty* values, ordered.
        let bits: Vec<u64> = a.iter().map(|h| h.raw_bits).collect();
        prop_assert!(bits.windows(2).all(|w| w[0] <= w[1]));
    }
}
