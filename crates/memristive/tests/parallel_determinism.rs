//! Scheduling-invariance properties for the parallel mat fan-out: the
//! persistent shard pool ([`rime_memristive::MatPool`] behind
//! `ParallelPolicy::Threads`), the legacy per-step `thread::scope`
//! fan-out (`ParallelPolicy::SpawnPerStep`), and `Auto` must all be
//! observationally identical to `Sequential` — same hit streams, same
//! raw bits, and bit-identical [`rime_memristive::OpCounters`] — across
//! random formats, thread counts, injected stuck-at faults, and batch
//! sizes. This is the executable form of the pool's fixed-order
//! reduction argument (wire-OR and removed-row sums are commutative
//! over disjoint shards, merged in worker order).
//!
//! Since the batched-epoch protocol (PR 7) the pool runs each descent
//! *speculatively* — workers race ahead on their local wire-OR view and
//! the controller folds their traces into the global decision sequence,
//! replaying divergent suffixes. The same properties therefore also run
//! with the force-replay knob armed (every descent takes the replay
//! path) and under adversarial shard plans (1-mat shards, maximal
//! imbalance with empty shards), pinning that speculation + replay is
//! bit-identical to `Sequential` too.

use proptest::prelude::*;
use rime_memristive::{
    Chip, ChipGeometry, Direction, ExtractHit, OpCounters, ParallelPolicy, SortableBits,
};

/// Slots per mat under [`geometry`] (4 arrays × 4 rows).
const SLOTS_PER_MAT: u64 = 16;

/// A geometry with `mats` narrow mats (16 slots each), so moderate key
/// counts span many mats and every policy gets real fan-out to schedule.
fn geometry(mats: u16) -> ChipGeometry {
    ChipGeometry {
        banks: 1,
        subbanks_per_bank: 1,
        mats_per_subbank: mats,
        arrays_per_mat: 4,
        rows: 4,
        cols: 64,
    }
}

/// Runs one full scenario under `policy`: store, fault injection, init,
/// one batch extraction, one single-extract continuation. Returns
/// everything observable.
fn run_policy<T: SortableBits>(
    keys: &[T],
    mats: u16,
    faults: &[(u64, u16, bool)],
    direction: Direction,
    k: usize,
    policy: ParallelPolicy,
) -> (Vec<ExtractHit>, Option<ExtractHit>, OpCounters) {
    run_policy_with(keys, mats, faults, direction, k, policy, None, None)
}

/// [`run_policy`] with the speculative-path knobs armed: `force_replay`
/// bails every initial speculation after that many steps (driving the
/// fold through divergence replay) and `shard_plan` pins an explicit
/// per-worker shard split for every pool lease.
#[allow(clippy::too_many_arguments)]
fn run_policy_with<T: SortableBits>(
    keys: &[T],
    mats: u16,
    faults: &[(u64, u16, bool)],
    direction: Direction,
    k: usize,
    policy: ParallelPolicy,
    force_replay: Option<u16>,
    shard_plan: Option<Vec<usize>>,
) -> (Vec<ExtractHit>, Option<ExtractHit>, OpCounters) {
    let mut chip = Chip::new(geometry(mats));
    chip.set_parallel_policy(policy);
    chip.set_pool_force_replay(force_replay);
    chip.set_pool_shard_plan(shard_plan);
    let raw: Vec<u64> = keys.iter().map(|v| v.to_raw_bits()).collect();
    chip.store_keys(0, &raw, T::FORMAT).unwrap();
    for &(slot, bit, stuck) in faults {
        chip.inject_stuck_cell(slot % raw.len() as u64, bit % T::FORMAT.bits(), stuck)
            .unwrap();
    }
    chip.init_range(0, raw.len() as u64, T::FORMAT).unwrap();
    let hits = chip.extract_batch(direction, k).unwrap();
    let next = chip.extract(direction).unwrap();
    (hits, next, *chip.counters())
}

/// Asserts every scheduling policy reproduces the `Sequential` oracle
/// bit for bit: hits (slots, raw bits, step counts), the single-extract
/// continuation, and all counters.
fn assert_policies_agree<T: SortableBits>(
    keys: &[T],
    mats: u16,
    faults: &[(u64, u16, bool)],
    direction: Direction,
    k: usize,
    threads: usize,
) -> Result<(), TestCaseError> {
    let want = run_policy(keys, mats, faults, direction, k, ParallelPolicy::Sequential);
    for policy in [
        ParallelPolicy::Threads(threads),
        ParallelPolicy::SpawnPerStep(threads),
        ParallelPolicy::Auto,
    ] {
        let got = run_policy(keys, mats, faults, direction, k, policy);
        prop_assert_eq!(&got.0, &want.0, "hit stream under {:?}", policy);
        prop_assert_eq!(got.1, want.1, "continuation under {:?}", policy);
        prop_assert_eq!(got.2, want.2, "counters under {:?}", policy);
    }

    // Speculative-path adversaries: forced divergence replay at several
    // bail points, and shard plans the default chunking never produces —
    // every shard a single mat, and one worker owning the whole span
    // while the rest sit on empty shards. All must still be
    // bit-identical to the Sequential oracle.
    let span = (keys.len() - 1) / SLOTS_PER_MAT as usize + 1;
    let single_mat_shards = vec![1usize; span];
    let mut max_imbalance = vec![0usize; 3];
    max_imbalance[0] = span;
    let scenarios: [(Option<u16>, Option<Vec<usize>>); 4] = [
        (Some(0), None),
        (Some(9), None),
        (None, Some(single_mat_shards)),
        (Some(3), Some(max_imbalance)),
    ];
    for (force, plan) in scenarios {
        let label = (force, plan.clone());
        let got = run_policy_with(
            keys,
            mats,
            faults,
            direction,
            k,
            ParallelPolicy::Threads(threads),
            force,
            plan,
        );
        prop_assert_eq!(&got.0, &want.0, "hit stream under knobs {:?}", &label);
        prop_assert_eq!(got.1, want.1, "continuation under knobs {:?}", &label);
        prop_assert_eq!(got.2, want.2, "counters under knobs {:?}", &label);
    }
    Ok(())
}

/// Zips independently generated fault component vectors (the proptest
/// shim has no tuple strategies).
fn zip_faults(slots: &[u64], bits: &[u16], stuck: &[bool]) -> Vec<(u64, u16, bool)> {
    slots
        .iter()
        .zip(bits)
        .zip(stuck)
        .map(|((&sl, &b), &s)| (sl, b, s))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn unsigned_policies_agree(
        keys in prop::collection::vec(any::<u64>(), 1..200),
        mats in 1u16..20,
        fault_slots in prop::collection::vec(any::<u64>(), 0..5),
        fault_bits in prop::collection::vec(0u16..64, 5..=5),
        fault_stuck in prop::collection::vec(any::<bool>(), 5..=5),
        k in 0usize..32,
        threads in 2usize..6,
        max in any::<bool>(),
    ) {
        prop_assume!(keys.len() as u64 <= u64::from(mats) * SLOTS_PER_MAT);
        let direction = if max { Direction::Max } else { Direction::Min };
        let faults = zip_faults(&fault_slots, &fault_bits, &fault_stuck);
        assert_policies_agree(&keys, mats, &faults, direction, k, threads)?;
    }

    #[test]
    fn signed_policies_agree(
        keys in prop::collection::vec(any::<i32>(), 1..200),
        mats in 1u16..20,
        fault_slots in prop::collection::vec(any::<u64>(), 0..5),
        fault_bits in prop::collection::vec(0u16..32, 5..=5),
        fault_stuck in prop::collection::vec(any::<bool>(), 5..=5),
        k in 0usize..32,
        threads in 2usize..6,
    ) {
        prop_assume!(keys.len() as u64 <= u64::from(mats) * SLOTS_PER_MAT);
        let faults = zip_faults(&fault_slots, &fault_bits, &fault_stuck);
        assert_policies_agree(&keys, mats, &faults, Direction::Min, k, threads)?;
    }

    #[test]
    fn float_policies_agree(
        keys in prop::collection::vec(any::<f32>(), 1..200),
        mats in 1u16..20,
        fault_slots in prop::collection::vec(any::<u64>(), 0..5),
        fault_bits in prop::collection::vec(0u16..32, 5..=5),
        fault_stuck in prop::collection::vec(any::<bool>(), 5..=5),
        k in 0usize..32,
        threads in 2usize..6,
        max in any::<bool>(),
    ) {
        prop_assume!(keys.len() as u64 <= u64::from(mats) * SLOTS_PER_MAT);
        let direction = if max { Direction::Max } else { Direction::Min };
        let faults = zip_faults(&fault_slots, &fault_bits, &fault_stuck);
        assert_policies_agree(&keys, mats, &faults, direction, k, threads)?;
    }
}

/// A wide fixed-span drain: 18 mats fully populated, drained to
/// exhaustion under every policy, with the pool reused across an
/// interleaved re-init. Deterministic (non-proptest) so it always runs
/// the wide-span pool path even if case generation trends narrow.
#[test]
fn wide_span_drain_is_policy_invariant() {
    let mats = 18u16;
    let n = u64::from(mats) * SLOTS_PER_MAT;
    let keys: Vec<u64> = (0..n).map(|i| (i * 2654435761) % 4093).collect();
    let mut reference: Option<(Vec<ExtractHit>, OpCounters)> = None;
    for policy in [
        ParallelPolicy::Sequential,
        ParallelPolicy::Threads(2),
        ParallelPolicy::Threads(5),
        ParallelPolicy::SpawnPerStep(4),
        ParallelPolicy::Auto,
    ] {
        let mut chip = Chip::new(geometry(mats));
        chip.set_parallel_policy(policy);
        chip.store_keys(0, &keys, u64::FORMAT).unwrap();
        chip.init_range(0, n, u64::FORMAT).unwrap();
        let mut hits = chip
            .extract_batch(Direction::Min, (n / 2) as usize)
            .unwrap();
        // Re-init mid-drain: the parked pool must rearm cleanly.
        chip.init_range(0, n, u64::FORMAT).unwrap();
        hits.extend(chip.extract_batch(Direction::Max, 8).unwrap());
        match &reference {
            None => reference = Some((hits, *chip.counters())),
            Some((want_hits, want_counters)) => {
                assert_eq!(&hits, want_hits, "{policy:?}");
                assert_eq!(chip.counters(), want_counters, "{policy:?}");
            }
        }
    }

    // Same drain with the speculative knobs armed: every descent bails
    // into the replay path and the lease splits 16/0/2 across three
    // workers (one near-total shard, one empty, one tiny).
    let (want_hits, want_counters) = reference.expect("reference recorded");
    let mut chip = Chip::new(geometry(mats));
    chip.set_parallel_policy(ParallelPolicy::Threads(3));
    chip.set_pool_force_replay(Some(5));
    chip.set_pool_shard_plan(Some(vec![16, 0, 2]));
    chip.store_keys(0, &keys, u64::FORMAT).unwrap();
    chip.init_range(0, n, u64::FORMAT).unwrap();
    let mut hits = chip
        .extract_batch(Direction::Min, (n / 2) as usize)
        .unwrap();
    chip.init_range(0, n, u64::FORMAT).unwrap();
    hits.extend(chip.extract_batch(Direction::Max, 8).unwrap());
    assert_eq!(hits, want_hits, "forced replay + adversarial shards");
    assert_eq!(*chip.counters(), want_counters);
}
