//! Differential properties for the batched extraction engine: for every
//! key format, geometry, and direction, `extract_batch(k)` must be
//! observationally identical to `k` sequential `extract` calls — same
//! slots, same raw bits, same stable tie-breaking, and identical
//! [`OpCounters`] — regardless of the parallel fan-out policy.

use proptest::prelude::*;
use rime_memristive::{
    Chip, ChipGeometry, Direction, ExtractHit, KeyFormat, OpCounters, ParallelPolicy, SortableBits,
};

/// A geometry with `mats` mats of 32 slots each (1 bank, 1 subbank).
fn geometry(mats: u16) -> ChipGeometry {
    ChipGeometry {
        banks: 1,
        subbanks_per_bank: 1,
        mats_per_subbank: mats,
        arrays_per_mat: 4,
        rows: 8,
        cols: 64,
    }
}

fn loaded_chip(raw: &[u64], format: KeyFormat, mats: u16, policy: ParallelPolicy) -> Chip {
    let mut chip = Chip::new(geometry(mats));
    chip.set_parallel_policy(policy);
    chip.store_keys(0, raw, format).unwrap();
    chip.init_range(0, raw.len() as u64, format).unwrap();
    chip
}

/// Drains up to `k` hits through single-key extraction, stopping at the
/// first exhausted probe — the contract `extract_batch` replicates.
fn sequential_reference(chip: &mut Chip, direction: Direction, k: usize) -> Vec<ExtractHit> {
    let mut out = Vec::new();
    for _ in 0..k {
        match chip.extract(direction).unwrap() {
            Some(hit) => out.push(hit),
            None => break,
        }
    }
    out
}

/// The expected (slot, raw_bits) sequence from a pure software model:
/// keys ordered by the format's comparison, ties by lowest slot.
fn software_reference(
    raw: &[u64],
    format: KeyFormat,
    direction: Direction,
    k: usize,
) -> Vec<(u64, u64)> {
    let mut order: Vec<(u64, u64)> = raw
        .iter()
        .enumerate()
        .map(|(slot, &bits)| (slot as u64, bits))
        .collect();
    order.sort_by(|a, b| {
        let cmp = format.compare_bits(a.1, b.1);
        let cmp = match direction {
            Direction::Min => cmp,
            Direction::Max => cmp.reverse(),
        };
        cmp.then(a.0.cmp(&b.0))
    });
    order.truncate(k);
    order
}

/// Runs the full differential check for one key set; returns the batch
/// hits and both counter snapshots for the caller's assertions.
fn check<T: SortableBits>(
    keys: &[T],
    mats: u16,
    k: usize,
    direction: Direction,
    policy: ParallelPolicy,
) -> (Vec<ExtractHit>, OpCounters, OpCounters) {
    let raw: Vec<u64> = keys.iter().map(|v| v.to_raw_bits()).collect();
    let mut batch_chip = loaded_chip(&raw, T::FORMAT, mats, policy);
    let mut seq_chip = loaded_chip(&raw, T::FORMAT, mats, ParallelPolicy::Sequential);

    let batch = batch_chip.extract_batch(direction, k).unwrap();
    let seq = sequential_reference(&mut seq_chip, direction, k);
    assert_eq!(batch, seq, "batch must equal the sequential drain");

    let soft = software_reference(&raw, T::FORMAT, direction, k);
    let got: Vec<(u64, u64)> = batch.iter().map(|h| (h.slot, h.raw_bits)).collect();
    assert_eq!(got, soft, "stable order with lowest-slot tie-break");

    (batch, *batch_chip.counters(), *seq_chip.counters())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn unsigned_batch_equals_sequential(
        keys in prop::collection::vec(any::<u64>(), 1..96),
        mats in 1u16..4,
        k in 0usize..100,
        max in any::<bool>(),
    ) {
        prop_assume!(keys.len() as u64 <= u64::from(mats) * 32);
        let direction = if max { Direction::Max } else { Direction::Min };
        let (_, bc, sc) = check(&keys, mats, k, direction, ParallelPolicy::Threads(3));
        prop_assert_eq!(bc, sc, "OpCounters must be identical");
    }

    #[test]
    fn signed_batch_equals_sequential(
        keys in prop::collection::vec(any::<i32>(), 1..96),
        mats in 1u16..4,
        k in 0usize..100,
    ) {
        prop_assume!(keys.len() as u64 <= u64::from(mats) * 32);
        let (_, bc, sc) = check(&keys, mats, k, Direction::Min, ParallelPolicy::Auto);
        prop_assert_eq!(bc, sc, "OpCounters must be identical");
    }

    #[test]
    fn float_batch_equals_sequential(
        keys in prop::collection::vec(any::<f32>(), 1..96),
        mats in 1u16..4,
        k in 0usize..100,
        max in any::<bool>(),
    ) {
        prop_assume!(keys.len() as u64 <= u64::from(mats) * 32);
        let direction = if max { Direction::Max } else { Direction::Min };
        let (_, bc, sc) = check(&keys, mats, k, direction, ParallelPolicy::Threads(2));
        prop_assert_eq!(bc, sc, "OpCounters must be identical");
    }

    #[test]
    fn duplicate_heavy_keys_keep_stable_ties(
        keys in prop::collection::vec(0u64..4, 1..96),
        mats in 1u16..4,
        k in 0usize..100,
    ) {
        prop_assume!(keys.len() as u64 <= u64::from(mats) * 32);
        // `check` already asserts slots come out lowest-address-first
        // among ties via the software reference.
        let (_, bc, sc) = check(&keys, mats, k, Direction::Min, ParallelPolicy::Threads(4));
        prop_assert_eq!(bc, sc, "OpCounters must be identical");
    }

    #[test]
    fn single_mat_geometry_works(
        keys in prop::collection::vec(any::<u32>(), 1..32),
        k in 0usize..40,
    ) {
        let (_, bc, sc) = check(&keys, 1, k, Direction::Min, ParallelPolicy::Threads(3));
        prop_assert_eq!(bc, sc, "OpCounters must be identical");
    }

    #[test]
    fn resuming_after_a_batch_continues_the_stream(
        keys in prop::collection::vec(any::<u64>(), 2..64),
        split in 1usize..63,
    ) {
        prop_assume!(split < keys.len());
        let raw: Vec<u64> = keys.clone();
        let mut chip = loaded_chip(&raw, KeyFormat::UNSIGNED64, 2, ParallelPolicy::Auto);
        let mut hits = chip.extract_batch(Direction::Min, split).unwrap();
        // Finish with single-key extraction: the exclusion flags persist.
        while let Some(hit) = chip.extract(Direction::Min).unwrap() {
            hits.push(hit);
        }
        let soft = software_reference(&raw, KeyFormat::UNSIGNED64, Direction::Min, keys.len());
        let got: Vec<(u64, u64)> = hits.iter().map(|h| (h.slot, h.raw_bits)).collect();
        prop_assert_eq!(got, soft);
    }
}
