//! Determinism of the Auto crossover under the `RIME_POOL_CROSSOVER`
//! env override — the knob CI uses to keep Auto's gate reproducible
//! across heterogeneous runners (the measured calibration is
//! wall-clock-derived and machine-specific).
//!
//! This lives in its own integration-test binary because it mutates
//! process environment: Rust runs the tests of one binary in threads
//! sharing that environment, so the single `#[test]` here owns the
//! variable for the whole process lifetime.

use rime_memristive::{Chip, ChipGeometry, Direction, KeyFormat, ParallelPolicy};

#[test]
fn env_override_pins_the_crossover_deterministically() {
    // Single-threaded env mutation before any chip consults it.
    // SAFETY-equivalent contract (stable set_var is not unsafe on this
    // toolchain): no other thread is running yet in this test binary.
    std::env::set_var("RIME_POOL_CROSSOVER", "7");

    // Every chip, however many times asked, resolves the same value —
    // no calibration noise can leak into the gate.
    for _ in 0..3 {
        let mut chip = Chip::new(ChipGeometry::tiny());
        assert_eq!(chip.pool_crossover_mats(), 7);
        assert_eq!(chip.pool_crossover_mats(), 7, "cached lookup is stable");
    }

    // The override survives pool rebuilds (which invalidate the cached
    // crossover and re-read the environment).
    let mut chip = Chip::new(ChipGeometry::tiny());
    let keys: Vec<u64> = (0..64).map(|i| i * 37 % 251).collect();
    chip.store_keys(0, &keys, KeyFormat::UNSIGNED64).unwrap();
    chip.init_range(0, 64, KeyFormat::UNSIGNED64).unwrap();
    chip.set_parallel_policy(ParallelPolicy::Threads(2));
    let _ = chip.extract_batch(Direction::Min, 4).unwrap();
    chip.set_parallel_policy(ParallelPolicy::Threads(3)); // forces a rebuild
    let _ = chip.extract_batch(Direction::Min, 4).unwrap();
    assert_eq!(chip.pool_crossover_mats(), 7);

    // Out-of-clamp and garbage values fall back safely: clamped into
    // [2, 2^20] or replaced by the measured value (never a panic).
    std::env::set_var("RIME_POOL_CROSSOVER", "1");
    let mut chip = Chip::new(ChipGeometry::tiny());
    assert_eq!(chip.pool_crossover_mats(), 2, "clamped to the minimum");

    std::env::set_var("RIME_POOL_CROSSOVER", "not-a-number");
    let mut chip = Chip::new(ChipGeometry::tiny());
    let measured = chip.pool_crossover_mats();
    assert!(
        (2..=1 << 20).contains(&measured),
        "fell back to measurement"
    );
}
