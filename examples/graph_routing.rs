//! Graph routing on RIME: Dijkstra shortest paths, MSTs, and A* path
//! finding (§VI-C, Fig. 17) — the workloads that rank IEEE-754 weights.
//!
//! Run with: `cargo run --example graph_routing`

use rime_apps::{astar, dijkstra, kruskal, prim};
use rime_core::{RimeConfig, RimeDevice};
use rime_workloads::{Graph, ObstacleGrid};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut dev = RimeDevice::new(RimeConfig::small());

    // --- Dijkstra: network routing -------------------------------------
    let graph = Graph::random_connected(300, 1_800, 99);
    let base = dijkstra::dijkstra_baseline(&graph, 0);
    let rime = dijkstra::dijkstra_rime(&mut dev, &graph, 0)?;
    assert_eq!(base, rime);
    let reachable = rime.iter().filter(|d| d.is_finite()).count();
    let furthest = rime.iter().cloned().fold(0.0f32, f32::max);
    println!(
        "Dijkstra over {} vertices / {} edges: {} reachable, max dist {:.1}",
        graph.vertices,
        graph.edge_count(),
        reachable,
        furthest
    );

    // --- Minimum spanning trees: Kruskal vs Prim ------------------------
    let (kw, kn) = kruskal::kruskal_rime(&mut dev, &graph)?;
    let (pw, pn) = prim::prim_rime(&mut dev, &graph)?;
    println!("Kruskal MST: {kn} edges, weight {kw:.1}");
    println!("Prim    MST: {pn} edges, weight {pw:.1}");
    assert!((kw - pw).abs() < 1e-3 * kw, "both MSTs weigh the same");

    // --- A*: path finding through obstacles -----------------------------
    let grid = ObstacleGrid::random(24, 24, 0.2, 5);
    let base = astar::astar_baseline(&grid);
    let rime = astar::astar_rime(&mut dev, &grid)?;
    assert_eq!(base, rime);
    match rime {
        Some(steps) => println!("A* on a 24×24 grid (20% obstacles): {steps}-step path"),
        None => println!("A*: destination walled off"),
    }

    println!("\ndevice extraction count: {}", dev.counters().extractions);
    Ok(())
}
