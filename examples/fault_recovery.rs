//! Endurance-failure handling: inject worn-out (stuck) cells into a
//! chip, locate them with the march-test BIST, and show how a driver
//! would fence the bad slots and keep ranking on the healthy ones.
//!
//! Run with: `cargo run --example fault_recovery`

use rime_memristive::{march_test, Chip, ChipGeometry, Direction, KeyFormat};

fn main() -> Result<(), rime_memristive::Error> {
    let mut chip = Chip::new(ChipGeometry::small());
    let slots = 64u64;

    // A healthy chip passes its power-on self test.
    let report = march_test(&mut chip, 0, slots)?;
    println!("power-on BIST: passed = {}", report.passed());
    assert!(report.passed());

    // Years later, two cells wear out and freeze.
    chip.inject_stuck_cell(9, 13, true)?;
    chip.inject_stuck_cell(40, 0, false)?;
    let report = march_test(&mut chip, 0, slots)?;
    println!(
        "after wear-out: passed = {}, defects at {:?}",
        report.passed(),
        report
            .faults
            .iter()
            .map(|f| (f.slot, f.bit))
            .collect::<Vec<_>>()
    );
    assert!(!report.passed());

    // The driver fences the faulty slots: data goes everywhere else, and
    // rime_init ranges simply exclude the bad rows.
    let bad: Vec<u64> = report.faults.iter().map(|f| f.slot).collect();
    let keys: Vec<u64> = (0..slots).map(|i| 1_000 - i * 3).collect();
    for (slot, &key) in (0..slots).zip(&keys) {
        if !bad.contains(&slot) {
            chip.store_keys(slot, &[key], KeyFormat::UNSIGNED64)?;
        }
    }
    // Rank the healthy prefix region before the first bad slot.
    let healthy_end = bad[0];
    chip.init_range(0, healthy_end, KeyFormat::UNSIGNED64)?;
    let mut sorted = Vec::new();
    while let Some(hit) = chip.extract(Direction::Min)? {
        sorted.push(hit.raw_bits);
    }
    println!(
        "ranked {} healthy slots below the first defect: {:?} …",
        sorted.len(),
        &sorted[..4.min(sorted.len())]
    );
    assert!(sorted.windows(2).all(|w| w[0] <= w[1]));
    assert_eq!(sorted.len() as u64, healthy_end);

    println!("\nwear so far (hottest slot): {} writes", chip.max_wear());
    Ok(())
}
