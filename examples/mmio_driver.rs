//! Driving RIME the way a kernel driver does (§V): every operation is an
//! in-order strong-uncacheable 64-bit read or write against the
//! memory-mapped register file — no typed API, just addresses and values.
//!
//! Run with: `cargo run --example mmio_driver`

use rime_core::mmio::{cmd, format_code, regs, status, MmioInterface, DATA_BASE};
use rime_core::{KeyFormat, RimeConfig};

fn main() {
    let mut mmio = MmioInterface::new(RimeConfig::small());

    // 1. Ordinary stores through the data window (these are the same
    //    DDR4 writes the application would issue to any memory).
    let packets = [412u64, 17, 9_000, 233, 17, 4];
    println!("storing {} keys through the data window…", packets.len());
    for (i, &key) in packets.iter().enumerate() {
        mmio.write(DATA_BASE + 8 * i as u64, key);
    }

    // 2. Program the operation: range, format, then the INIT doorbell.
    mmio.write(regs::BEGIN, 0);
    mmio.write(regs::END, packets.len() as u64);
    mmio.write(regs::FORMAT, format_code(KeyFormat::UNSIGNED64));
    mmio.write(regs::COMMAND, cmd::INIT);
    assert_eq!(mmio.read(regs::STATUS), status::OK);
    println!("rime_init over [0, {})", packets.len());

    // 3. Ring the MIN doorbell until the range is exhausted.
    println!("\n{:>8} {:>8}", "value", "slot");
    loop {
        mmio.write(regs::COMMAND, cmd::MIN);
        match mmio.read(regs::STATUS) {
            status::OK => println!(
                "{:>8} {:>8}",
                mmio.read(regs::RESULT_VALUE),
                mmio.read(regs::RESULT_ADDR)
            ),
            status::EXHAUSTED => break,
            other => panic!("device fault: status {other}"),
        }
    }

    // 4. Error handling is also register-visible.
    mmio.write(regs::BEGIN, 10);
    mmio.write(regs::END, 5); // inverted range
    mmio.write(regs::COMMAND, cmd::INIT);
    assert_eq!(mmio.read(regs::STATUS), status::ERROR);
    println!("\ninverted range correctly faulted (STATUS = ERROR)");

    println!(
        "uncacheable accesses issued: {} — every one of these is an\n\
         in-order UC transaction on the DDR4 bus (§V)",
        mmio.uc_accesses
    );
}
