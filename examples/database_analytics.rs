//! Database analytics on RIME: GroupBy and MergeJoin (§VI-C, Fig. 16).
//!
//! Builds key-value tables, runs both the conventional-CPU and the
//! RIME-accelerated versions, verifies they agree, and prints the
//! modeled paper-scale throughputs for the three systems.
//!
//! Run with: `cargo run --example database_analytics`

use rime_apps::{groupby, mergejoin};
use rime_core::{RimeConfig, RimeDevice, RimePerfConfig};
use rime_memsim::SystemConfig;
use rime_workloads::{JoinTables, KvTable};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut dev = RimeDevice::new(RimeConfig::small());

    // --- GroupBy: functional run on real data -------------------------
    let table = KvTable::grouped(4_000, 10, 2026);
    let base = groupby::groupby_baseline(&table);
    let rime = groupby::groupby_rime(&mut dev, &table)?;
    assert_eq!(base, rime);
    println!("GroupBy over {} rows -> {} groups", table.len(), rime.len());
    for (key, sum) in rime.iter().take(4) {
        println!("  group {key}: sum = {sum}");
    }

    // --- MergeJoin: functional run ------------------------------------
    let tables = JoinTables::with_overlap(3_000, 0.4, 7);
    let base = mergejoin::mergejoin_baseline(&tables);
    let rime = mergejoin::mergejoin_rime(&mut dev, &tables)?;
    assert_eq!(base, rime);
    println!(
        "\nMergeJoin of 2 × {} rows -> {} matches",
        tables.left.len(),
        rime.len()
    );

    // --- Paper-scale throughput model (Fig. 16) ------------------------
    let perf = RimePerfConfig::table1();
    println!("\nModeled GroupBy throughput (million rows/s), 16 cores:");
    println!("{:>12} {:>10} {:>10} {:>8}", "rows", "DDR4", "HBM", "RIME");
    for rows in [1_000_000u64, 8_000_000, 65_000_000] {
        let off = groupby::baseline_throughput_mkps(rows, &SystemConfig::off_chip(16));
        let hbm = groupby::baseline_throughput_mkps(rows, &SystemConfig::in_package(16));
        let rime = groupby::rime_throughput_mkps(rows, &perf);
        println!("{rows:>12} {off:>10.2} {hbm:>10.2} {rime:>8.1}");
    }
    Ok(())
}
