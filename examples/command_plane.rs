//! The unified command plane: three front-ends, one executor, one
//! telemetry stream.
//!
//! Every mutation of a RIME device — whether issued through the typed
//! Rust API, built programmatically as a `Command`, or replayed from a
//! trace — lowers into the same `rime_core::cmd::Executor`. Telemetry
//! sinks attached to the device observe the identical event stream no
//! matter which front-end produced it.
//!
//! Run with: `cargo run --example command_plane`

use std::borrow::Cow;

use rime_core::telemetry::{shared, CounterSink, WearSink};
use rime_core::trace::{replay, TracedDevice};
use rime_core::{Command, KeyFormat, Outcome, RimeConfig, RimeDevice};
use rime_energy::{EnergySink, PowerModel};

fn main() {
    let dev = RimeDevice::new(RimeConfig::small());

    // Attach an observer fleet before doing anything: operation counters,
    // wear tracking, and the rime-energy pricing sink all see one ordered
    // event stream.
    let counters = shared(CounterSink::default());
    let wear = shared(WearSink::default());
    let energy = shared(EnergySink::new(PowerModel::table1()));
    dev.attach_telemetry(counters.clone());
    dev.attach_telemetry(wear.clone());
    dev.attach_telemetry(energy.clone());

    // Front-end 1: the typed API (thin encoders over Commands).
    let region = dev.alloc(8).unwrap();
    dev.write(region, 0, &[412u32, 17, 9_000, 233, 17, 4, 777, 56])
        .unwrap();
    dev.init_all::<u32>(region).unwrap();
    let top3 = dev.rime_min_k::<u32>(region, 3).unwrap();
    println!("typed API    rime_min_k(3) -> {top3:?}");

    // Front-end 2: raw typed Commands through the same executor — what
    // the MMIO register file decodes doorbell writes into.
    let raw = [1u64, 2];
    let outcome = dev
        .execute(Command::Write {
            region,
            offset: 6,
            raw: Cow::Borrowed(&raw),
            format: KeyFormat::UNSIGNED32,
        })
        .unwrap();
    assert_eq!(outcome, Outcome::Done);
    dev.execute(Command::Init {
        region,
        offset: 0,
        len: 8,
        format: KeyFormat::UNSIGNED32,
    })
    .unwrap();
    let hit = dev.execute(Command::Extract {
        region,
        format: KeyFormat::UNSIGNED32,
        direction: rime_core::Direction::Min,
    });
    println!("raw Command  Extract(min)  -> {hit:?}");

    // Every sink observed both front-ends' work.
    let counters = counters.lock().unwrap().clone();
    println!(
        "\ntelemetry: {} commands, {} extractions, {} row writes, {:.1} nJ dynamic",
        counters.commands(),
        counters.counters().extractions,
        wear.lock().unwrap().total_writes(),
        energy.lock().unwrap().dynamic_nj(),
    );

    // Front-end 3: trace record + replay. The recorder is itself a
    // telemetry sink; replay feeds the recorded Commands back through a
    // fresh device's executor.
    let mut traced = TracedDevice::new(RimeConfig::small());
    let r = traced.alloc(6).unwrap();
    traced
        .write_raw(r, 0, &[31, 41, 5, 9, 2, 65], KeyFormat::UNSIGNED64)
        .unwrap();
    traced.init_raw(r, 0, 6, KeyFormat::UNSIGNED64).unwrap();
    let batch = traced
        .extract_batch(r, KeyFormat::UNSIGNED64, rime_core::Direction::Min, 4)
        .unwrap();
    let trace = traced.into_trace();
    let replayed = replay(&trace, RimeConfig::small()).unwrap();
    println!(
        "\ntrace: {} ops recorded; live batch {:?}; replayed {:?}",
        trace.len(),
        batch.iter().map(|&(_, v)| v).collect::<Vec<_>>(),
        replayed
    );
    assert_eq!(
        replayed,
        batch.iter().map(|&(_, v)| Some(v)).collect::<Vec<_>>()
    );
    println!("replay is bit-identical to the live run");
}
