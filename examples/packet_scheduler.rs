//! Strict-priority packet scheduling on RIME (§VI-C, Fig. 18).
//!
//! One thread adds packets, another removes the minimum-key packet —
//! here serialized as a trace with add:remove ratio R. The RIME queue
//! adds with ordinary writes and removes with one ranking access.
//!
//! Run with: `cargo run --example packet_scheduler`

use rime_apps::spq;
use rime_core::{RimeConfig, RimeDevice, RimePerfConfig};
use rime_memsim::SystemConfig;
use rime_workloads::PacketStream;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dev = RimeDevice::new(RimeConfig::small());

    // --- Functional run: RIME queue vs binary heap ---------------------
    let stream = PacketStream::generate(512, 200, 2, 1234);
    let base = spq::spq_baseline(&stream);
    let rime = spq::spq_rime(&dev, &stream)?;
    assert_eq!(base, rime);
    println!(
        "processed {} adds / {} removes (R = {}): schedulers agree",
        stream.adds(),
        stream.removes(),
        stream.ratio
    );
    println!("first removals: {:?}", &rime[..5.min(rime.len())]);

    // --- Fig. 18 shape: throughput vs buffer size and R -----------------
    let sys = SystemConfig::off_chip(16);
    let perf = RimePerfConfig::table1();
    let removes = 1_000_000u64;
    println!("\nModeled remove-throughput (million packets/s):");
    println!(
        "{:>12} {:>3} {:>10} {:>8}",
        "buffer", "R", "DDR4 heap", "RIME"
    );
    for &size in &[500_000u64, 8_000_000, 65_000_000] {
        for r in [1u32, 3, 5] {
            let base = spq::baseline_throughput_mkps(size, removes, r, &sys);
            let rime = spq::rime_throughput_mkps(size, removes, r, &perf);
            println!("{size:>12} {r:>3} {base:>10.2} {rime:>8.1}");
        }
    }
    println!("\nRIME stays flat across sizes and ratios (§VII-A).");
    Ok(())
}
