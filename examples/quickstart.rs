//! Quickstart: the RIME API end to end.
//!
//! Mirrors the paper's Fig. 12 code snippet — allocate a region, store
//! keys, initialize it, and stream ranked values back with `rime_min` —
//! then shows ranking, descending order, and merge.
//!
//! Run with: `cargo run --example quickstart`

use rime_core::{ops, RimeConfig, RimeDevice, RimeError};

fn main() -> Result<(), RimeError> {
    // A functional device: 2 channels × 2 chips of small memristive arrays.
    let dev = RimeDevice::new(RimeConfig::small());
    println!("RIME device: {} key slots\n", dev.capacity());

    // --- rime_malloc + ordinary stores -------------------------------
    let data = [248u64, 125, 16, 49, 105, 192, 5, 218]; // Fig. 14's chip 0
    let region = dev.alloc(data.len() as u64)?;
    dev.write(region, 0, &data)?;
    println!("stored {:?}", data);

    // --- Fig. 12: find the k least values in sorted order -------------
    dev.init_all::<u64>(region)?;
    let mut sorted_list = Vec::new();
    for _ in 0..3 {
        if let Some((addr, value)) = dev.rime_min::<u64>(region)? {
            sorted_list.push(value);
            println!("rime_min -> {value:>3} (global slot {addr})");
        }
    }
    assert_eq!(sorted_list, vec![5, 16, 49]);

    // --- full sort as an ordered stream ------------------------------
    let sorted = ops::sort_into_vec::<u64>(&dev, region)?;
    println!("\nfull sort: {sorted:?}");

    // --- ranking: the k-th order statistic costs k accesses ----------
    let median = ops::kth_smallest::<u64>(&dev, region, data.len() as u64 / 2)?;
    println!("median   : {:?}", median);

    // --- descending order with rime_max ------------------------------
    let mut top = ops::sorted_desc::<u64>(&dev, region)?;
    println!("top-2    : {:?} {:?}", top.try_next()?, top.try_next()?);

    // --- merging two sets (the paper's Fig. 6 example) ----------------
    let a = dev.alloc(5)?;
    dev.write(a, 0, &[5u32, 1, 3, 7, 10])?;
    let b = dev.alloc(3)?;
    dev.write(b, 0, &[4u32, 8, 5])?;
    let merged = ops::merge::<u32>(&dev, &[a, b])?;
    let joined = ops::merge_join::<u32>(&dev, a, b)?;
    println!("\nmerge    : {merged:?}");
    println!("mergejoin: {joined:?}");
    assert_eq!(merged, vec![1, 3, 4, 5, 5, 7, 8, 10]);
    assert_eq!(joined, vec![5]);

    // --- floats rank natively (no conversion, §VI-C) ------------------
    let f = dev.alloc(3)?;
    dev.write(f, 0, &[18.0f32, -1.625, -0.75])?; // Fig. 5's values
    let fs = ops::sort_into_vec::<f32>(&dev, f)?;
    println!("floats   : {fs:?}");
    assert_eq!(fs, vec![-1.625, -0.75, 18.0]);

    for r in [region, a, b, f] {
        dev.free(r)?;
    }
    println!("\ndevice counters: {:?}", dev.counters());
    Ok(())
}
