//! A literal walkthrough of the paper's Fig. 14: two single-DIMM
//! channels (RIME 0 and RIME 1) of eight chips each, every chip holding
//! its own keys. The library buffers one candidate per chip; each
//! iteration consumes the global minimum and only the winning chip
//! computes a replacement.
//!
//! Fig. 14's buffer states:
//!
//! ```text
//! i=0:  RIME0 = [248,125, 16, 49,105,192,  5,218]   min = 5   → refill 14
//! i=1:  RIME1 = [122,147, 11, 56, 87, 12, 21,442]   min = 11  → refill 119
//! i=2:                                              min = 12  → refill 258
//! i=3:                                              min = 14  …
//! ```

use rime_core::{RimeConfig, RimeDevice};
use rime_memristive::ChipGeometry;

#[test]
fn fig14_two_channel_walkthrough() {
    // 2 channels × 8 chips, tiny geometry (64 slots per chip).
    let config = RimeConfig {
        channels: 2,
        chips_per_channel: 8,
        chip_geometry: ChipGeometry::tiny(),
        ..RimeConfig::small()
    };
    let dev = RimeDevice::new(config);
    let per_chip = dev.config().chip_slots();

    // Fig. 14's initial per-chip minima and the refill values revealed in
    // later iterations (chips not shown refilling get large backups).
    let rime0 = [248u64, 125, 16, 49, 105, 192, 5, 218];
    let rime1 = [122u64, 147, 11, 56, 87, 12, 21, 442];
    let refill0 = [9000u64, 9001, 9002, 9003, 9004, 9005, 14, 9006];
    let refill1 = [9010u64, 9011, 119, 9012, 9013, 258, 9014, 9015];

    // One region spanning the whole device; chip-major slot mapping puts
    // [chip * per_chip, …) on chip `chip`.
    let region = dev.alloc(dev.capacity()).unwrap();
    // Everything defaults to a huge sentinel so untouched slots never win.
    let filler = vec![u64::MAX - 1; dev.capacity() as usize];
    dev.write(region, 0, &filler).unwrap();
    for (chip, (&head, &backup)) in rime0.iter().zip(&refill0).enumerate() {
        dev.write(region, chip as u64 * per_chip, &[head, backup])
            .unwrap();
    }
    for (chip, (&head, &backup)) in rime1.iter().zip(&refill1).enumerate() {
        let chip = chip + 8; // channel 1
        dev.write(region, chip as u64 * per_chip, &[head, backup])
            .unwrap();
    }

    dev.init_all::<u64>(region).unwrap();

    // The first iteration activates all 16 chips (one buffered candidate
    // each); subsequent iterations refill only the winner.
    let expected_stream = [5u64, 11, 12, 14, 16, 21, 49, 56, 87, 105, 119];
    for (i, &want) in expected_stream.iter().enumerate() {
        let (slot, got) = dev.rime_min::<u64>(region).unwrap().unwrap();
        assert_eq!(got, want, "iteration {i}");
        // The winner's slot must live on the chip Fig. 14 says it does.
        let chip = slot / per_chip;
        match want {
            5 => assert_eq!(chip, 6, "5 lives on RIME0 chip 6"),
            11 => assert_eq!(chip, 10, "11 lives on RIME1 chip 2"),
            12 => assert_eq!(chip, 13, "12 lives on RIME1 chip 5"),
            14 => assert_eq!(chip, 6, "the refilled 14 comes from the same chip as 5"),
            _ => {}
        }
    }

    // Fig. 12's framing: the loop runs k times for the k least values.
    assert_eq!(dev.spanned_chips(region), 16);
}
