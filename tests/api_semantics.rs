//! API-contract tests: the semantics §V promises for `rime_malloc`,
//! `rime_init`, `rime_min`/`rime_max`, and `rime_free`.

use rime_core::{ops, RimeConfig, RimeDevice, RimeError};

fn device() -> RimeDevice {
    RimeDevice::new(RimeConfig::small())
}

#[test]
fn malloc_fails_cleanly_then_recovers_after_free() {
    // §V: rime_malloc returns null under fragmentation; the user frees
    // and retries.
    let dev = device();
    let total = dev.capacity();
    let half = dev.alloc(total / 2).unwrap();
    let _quarter = dev.alloc(total / 4).unwrap();
    let err = dev.alloc(total / 2).unwrap_err();
    assert!(matches!(err, RimeError::OutOfContiguousMemory { .. }));
    dev.free(half).unwrap();
    assert!(dev.alloc(total / 2).is_ok());
}

#[test]
fn regions_are_isolated() {
    let dev = device();
    let a = dev.alloc(8).unwrap();
    let b = dev.alloc(8).unwrap();
    dev.write(a, 0, &[1u32; 8]).unwrap();
    dev.write(b, 0, &[2u32; 8]).unwrap();
    assert_eq!(dev.read::<u32>(a, 0, 8).unwrap(), vec![1; 8]);
    assert_eq!(dev.read::<u32>(b, 0, 8).unwrap(), vec![2; 8]);
}

#[test]
fn init_defines_the_operating_subrange() {
    // Fig. 12: rime_init may select a sub-region of a malloc'd region.
    let dev = device();
    let region = dev.alloc(8).unwrap();
    dev.write(region, 0, &[80u32, 70, 60, 50, 40, 30, 20, 10])
        .unwrap();
    dev.init::<u32>(region, 2, 3).unwrap(); // {60, 50, 40}
    let mut got = Vec::new();
    while let Some((_, v)) = dev.rime_min::<u32>(region).unwrap() {
        got.push(v);
    }
    assert_eq!(got, vec![40, 50, 60]);
}

#[test]
fn reinit_restarts_the_stream_and_discards_buffers() {
    let dev = device();
    let region = dev.alloc(4).unwrap();
    dev.write(region, 0, &[9u32, 5, 7, 1]).unwrap();
    dev.init_all::<u32>(region).unwrap();
    assert_eq!(dev.rime_min::<u32>(region).unwrap().unwrap().1, 1);
    assert_eq!(dev.rime_min::<u32>(region).unwrap().unwrap().1, 5);
    dev.init_all::<u32>(region).unwrap();
    assert_eq!(
        dev.rime_min::<u32>(region).unwrap().unwrap().1,
        1,
        "restarted"
    );
}

#[test]
fn normal_loads_coexist_with_ranking() {
    // §V: allocated memory is usable with ordinary loads/stores.
    let dev = device();
    let region = dev.alloc(6).unwrap();
    dev.write(region, 0, &[6u64, 4, 2, 8, 12, 10]).unwrap();
    dev.init_all::<u64>(region).unwrap();
    assert_eq!(dev.rime_min::<u64>(region).unwrap().unwrap().1, 2);
    // A plain read does not disturb the exclusion state.
    assert_eq!(dev.read::<u64>(region, 0, 2).unwrap(), vec![6, 4]);
    assert_eq!(dev.rime_min::<u64>(region).unwrap().unwrap().1, 4);
}

#[test]
fn type_checking_is_enforced_per_region() {
    let dev = device();
    let region = dev.alloc(4).unwrap();
    dev.write(region, 0, &[1.5f32, -2.5, 0.0, 3.5]).unwrap();
    assert!(matches!(
        dev.init_all::<u32>(region),
        Err(RimeError::TypeMismatch { .. })
    ));
    dev.init_all::<f32>(region).unwrap();
    assert_eq!(dev.rime_min::<f32>(region).unwrap().unwrap().1, -2.5);
}

#[test]
fn min_and_max_are_duals() {
    let dev = device();
    let region = dev.alloc(16).unwrap();
    let keys: Vec<i32> = (0..16).map(|i| (i * 37 % 23) - 11).collect();
    dev.write(region, 0, &keys).unwrap();

    let asc = ops::sort_into_vec::<i32>(&dev, region).unwrap();
    let mut desc = ops::sorted_desc::<i32>(&dev, region)
        .unwrap()
        .collect_remaining()
        .unwrap();
    desc.reverse();
    assert_eq!(asc, desc);
}

#[test]
fn freeing_under_active_session_invalidates_it() {
    let dev = device();
    let region = dev.alloc(4).unwrap();
    dev.write(region, 0, &[3u32, 1, 4, 1]).unwrap();
    dev.init_all::<u32>(region).unwrap();
    dev.free(region).unwrap();
    assert_eq!(dev.rime_min::<u32>(region), Err(RimeError::InvalidRegion));
}

#[test]
fn many_small_regions_roundtrip() {
    let dev = device();
    let mut regions = Vec::new();
    for i in 0..32u64 {
        let r = dev.alloc(16).unwrap();
        let keys: Vec<u64> = (0..16).map(|j| (i * 1_000 + j * 7) % 977).collect();
        dev.write(r, 0, &keys).unwrap();
        regions.push((r, keys));
    }
    for (r, keys) in regions {
        let got = ops::sort_into_vec::<u64>(&dev, r).unwrap();
        let mut want = keys;
        want.sort_unstable();
        assert_eq!(got, want);
        dev.free(r).unwrap();
    }
}
