//! Integration tests over the extension surfaces: the MMIO register
//! interface, hybrid RIME kernels, external sorting, query operators,
//! DIMM modes, and trace replay — all cross-checked against the typed
//! API and `std` reference implementations on shared data.

use rime_apps::{external, query};
use rime_core::mmio::{cmd, format_code, regs, MmioInterface, DATA_BASE};
use rime_core::trace::{replay, TracedDevice};
use rime_core::{dimm, ops, Direction, KeyFormat, RimeConfig, RimeDevice};
use rime_kernels::hybrid;
use rime_workloads::keys::{generate_u64, generate_zipf, KeyDistribution};
use rime_workloads::KvTable;

#[test]
fn mmio_and_typed_api_agree() {
    let keys = generate_u64(200, KeyDistribution::Uniform, 301);

    // Typed path.
    let dev = RimeDevice::new(RimeConfig::small());
    let region = dev.alloc(keys.len() as u64).unwrap();
    dev.write(region, 0, &keys).unwrap();
    let typed = ops::sort_into_vec::<u64>(&dev, region).unwrap();

    // Register path.
    let mut m = MmioInterface::new(RimeConfig::small());
    m.write(regs::FORMAT, format_code(KeyFormat::UNSIGNED64));
    for (i, &k) in keys.iter().enumerate() {
        m.write(DATA_BASE + 8 * i as u64, k);
    }
    m.write(regs::BEGIN, 0);
    m.write(regs::END, keys.len() as u64);
    m.write(regs::COMMAND, cmd::INIT);
    let mut mmio_sorted = Vec::new();
    loop {
        m.write(regs::COMMAND, cmd::MIN);
        if m.read(regs::STATUS) != rime_core::mmio::status::OK {
            break;
        }
        mmio_sorted.push(m.read(regs::RESULT_VALUE));
    }
    assert_eq!(typed, mmio_sorted);
}

#[test]
fn all_hybrid_kernels_agree_with_each_other() {
    let keys = generate_zipf(800, 1 << 20, 0.8, 302);
    let mut dev = RimeDevice::new(RimeConfig::small());
    let merge = hybrid::merge_sort_rime(&mut dev, &keys, 4).unwrap();
    let quick = hybrid::quick_sort_rime(&mut dev, &keys, 64).unwrap();
    let radix = hybrid::radix_sort_rime(&mut dev, &keys).unwrap();
    let heap = hybrid::heap_sort_rime(&mut dev, &keys).unwrap();
    assert_eq!(merge, quick);
    assert_eq!(merge, radix);
    assert_eq!(merge, heap);
    let mut want = keys;
    want.sort_unstable();
    assert_eq!(merge, want);
}

#[test]
fn external_sort_agrees_with_single_region_sort() {
    let keys = generate_u64(1_000, KeyDistribution::Uniform, 303);
    let dev = RimeDevice::new(RimeConfig::small());
    let chunked = external::external_sort(&dev, &keys, 37).unwrap();
    let region = dev.alloc(keys.len() as u64).unwrap();
    dev.write(region, 0, &keys).unwrap();
    let single = ops::sort_into_vec::<u64>(&dev, region).unwrap();
    assert_eq!(chunked, single);
}

#[test]
fn query_operators_match_std_reference() {
    let table = KvTable::grouped(500, 40, 304);
    let mut dev = RimeDevice::new(RimeConfig::small());

    // ORDER BY LIMIT vs std sort.
    let top = query::order_by_limit(&mut dev, &table, query::Order::Ascending, 10).unwrap();
    let mut want: Vec<(u32, u32)> = table
        .keys
        .iter()
        .zip(&table.values)
        .map(|(&k, &v)| (k as u32, v as u32))
        .collect();
    want.sort_unstable();
    assert_eq!(top, want[..10]);

    // Scalar aggregate vs iterator min/max.
    let keys: Vec<u64> = table.keys.clone();
    let (min, max) = query::min_max::<u64>(&mut dev, &keys).unwrap().unwrap();
    assert_eq!(min, *keys.iter().min().unwrap());
    assert_eq!(max, *keys.iter().max().unwrap());

    // DISTINCT vs a BTreeSet.
    let distinct = query::distinct_sorted(&mut dev, &keys).unwrap();
    let want: Vec<u64> = keys
        .iter()
        .copied()
        .collect::<std::collections::BTreeSet<_>>()
        .into_iter()
        .collect();
    assert_eq!(distinct, want);
}

#[test]
fn dimm_modes_partition_the_address_space() {
    let mut sys = dimm::DimmSystem::small_mixed();
    // Paper example: bit 2^30 selects the DIMM.
    assert!(sys.ranking_allowed(0x3FFF_FFC0));
    assert!(!sys.ranking_allowed(0x4000_0000));
    // Normal storage works on DIMM 1, ranking works on DIMM 0.
    sys.store_normal(dimm::DIMM_BYTES + 8, 0xCAFE).unwrap();
    assert_eq!(sys.load_normal(dimm::DIMM_BYTES + 8).unwrap(), 0xCAFE);
    let region = sys.rime_malloc(3).unwrap();
    let dev = sys.rime_device();
    dev.write(region, 0, &[3u32, 1, 2]).unwrap();
    assert_eq!(ops::kth_smallest::<u32>(dev, region, 0).unwrap(), Some(1));
}

#[test]
fn recorded_trace_replays_on_a_larger_device() {
    let keys = generate_u64(64, KeyDistribution::Uniform, 305);
    let mut traced = TracedDevice::new(RimeConfig::small());
    let r = traced.alloc(keys.len() as u64).unwrap();
    traced
        .write_raw(r, 0, &keys, KeyFormat::UNSIGNED64)
        .unwrap();
    traced
        .init_raw(r, 0, keys.len() as u64, KeyFormat::UNSIGNED64)
        .unwrap();
    let mut live = Vec::new();
    for _ in 0..keys.len() {
        live.push(
            traced
                .extract(r, KeyFormat::UNSIGNED64, Direction::Min)
                .unwrap()
                .map(|(_, v)| v),
        );
    }
    let trace = traced.into_trace();
    let bigger = RimeConfig {
        channels: 4,
        ..RimeConfig::small()
    };
    assert_eq!(replay(&trace, bigger).unwrap(), live);
}

#[test]
fn faulty_device_still_terminates_and_orders_consistently() {
    // Inject stuck cells into a chip via the memristive layer, then sort
    // through the full stack: the output must still be totally ordered
    // under the faulty (observable) values and of the right length.
    use rime_memristive::{Chip, ChipGeometry};
    let keys = generate_u64(128, KeyDistribution::Uniform, 306);
    let mut chip = Chip::new(ChipGeometry::small());
    chip.store_keys(0, &keys, KeyFormat::UNSIGNED64).unwrap();
    for slot in [3u64, 17, 64] {
        chip.inject_stuck_cell(slot, 63, true).unwrap();
        chip.inject_stuck_cell(slot, 2, false).unwrap();
    }
    chip.init_range(0, keys.len() as u64, KeyFormat::UNSIGNED64)
        .unwrap();
    let mut out = Vec::new();
    while let Some(hit) = chip.extract(Direction::Min).unwrap() {
        out.push(hit.raw_bits);
    }
    assert_eq!(out.len(), keys.len(), "every slot still extracted once");
    assert!(out.windows(2).all(|w| w[0] <= w[1]), "ordered under faults");
}
