//! Cross-validation of every evaluated application (§VI-C): the RIME
//! version and the conventional baseline must produce identical results
//! on real generated data, across several seeds.

use rime_apps::{astar, dijkstra, groupby, kruskal, mergejoin, prim, spq};
use rime_core::{RimeConfig, RimeDevice};
use rime_workloads::{Graph, JoinTables, KvTable, ObstacleGrid, PacketStream};

fn device() -> RimeDevice {
    RimeDevice::new(RimeConfig::small())
}

#[test]
fn groupby_agrees_across_seeds() {
    for seed in 0..3 {
        let table = KvTable::grouped(1_200, 25, seed);
        let mut dev = device();
        assert_eq!(
            groupby::groupby_baseline(&table),
            groupby::groupby_rime(&mut dev, &table).unwrap(),
            "seed {seed}"
        );
    }
}

#[test]
fn mergejoin_agrees_across_overlaps() {
    for (seed, overlap) in [(10, 0.1), (11, 0.5), (12, 0.9)] {
        let tables = JoinTables::with_overlap(900, overlap, seed);
        let mut dev = device();
        assert_eq!(
            mergejoin::mergejoin_baseline(&tables),
            mergejoin::mergejoin_rime(&mut dev, &tables).unwrap(),
            "seed {seed}"
        );
    }
}

#[test]
fn mst_algorithms_agree_with_each_other_and_rime() {
    for seed in 20..23 {
        let graph = Graph::random_connected(120, 700, seed);
        let mut dev = device();
        let (kw, kn) = kruskal::kruskal_baseline(&graph);
        let (pw, pn) = prim::prim_baseline(&graph);
        let (rkw, rkn) = kruskal::kruskal_rime(&mut dev, &graph).unwrap();
        let (rpw, rpn) = prim::prim_rime(&mut dev, &graph).unwrap();
        assert_eq!(kn, 119);
        assert_eq!(kn, pn);
        assert_eq!(kn, rkn);
        assert_eq!(kn, rpn);
        let tol = 1e-4 * kw.max(1.0);
        assert!((kw - pw).abs() < tol, "kruskal {kw} vs prim {pw}");
        assert!((kw - rkw).abs() < tol);
        assert!((pw - rpw).abs() < tol);
    }
}

#[test]
fn dijkstra_agrees_on_dense_and_sparse_graphs() {
    for (seed, v, e) in [(30, 60u32, 150usize), (31, 40, 600)] {
        let graph = Graph::random_connected(v, e, seed);
        let mut dev = device();
        assert_eq!(
            dijkstra::dijkstra_baseline(&graph, 0),
            dijkstra::dijkstra_rime(&mut dev, &graph, 0).unwrap(),
            "seed {seed}"
        );
    }
}

#[test]
fn astar_agrees_across_densities() {
    for (seed, density) in [(40, 0.0), (41, 0.2), (42, 0.35)] {
        let grid = ObstacleGrid::random(14, 14, density, seed);
        let mut dev = device();
        assert_eq!(
            astar::astar_baseline(&grid),
            astar::astar_rime(&mut dev, &grid).unwrap(),
            "seed {seed} density {density}"
        );
    }
}

#[test]
fn spq_agrees_across_ratios() {
    for ratio in 1..=5u32 {
        let stream = PacketStream::generate(128, 64, ratio, 50 + ratio as u64);
        let dev = device();
        assert_eq!(
            spq::spq_baseline(&stream),
            spq::spq_rime(&dev, &stream).unwrap(),
            "R = {ratio}"
        );
    }
}

#[test]
fn apps_share_one_device_sequentially() {
    // One device hosts all applications one after another — allocations
    // and sessions must not leak between them.
    let mut dev = device();
    let table = KvTable::grouped(400, 8, 60);
    let graph = Graph::random_connected(50, 200, 61);
    let grid = ObstacleGrid::random(10, 10, 0.2, 62);
    let stream = PacketStream::generate(64, 32, 2, 63);

    assert_eq!(
        groupby::groupby_rime(&mut dev, &table).unwrap(),
        groupby::groupby_baseline(&table)
    );
    assert_eq!(
        dijkstra::dijkstra_rime(&mut dev, &graph, 0).unwrap(),
        dijkstra::dijkstra_baseline(&graph, 0)
    );
    assert_eq!(
        astar::astar_rime(&mut dev, &grid).unwrap(),
        astar::astar_baseline(&grid)
    );
    assert_eq!(
        spq::spq_rime(&dev, &stream).unwrap(),
        spq::spq_baseline(&stream)
    );
    // Everything was freed: the full capacity is available again.
    assert_eq!(dev.largest_free(), dev.capacity());
}
