//! Concurrency stress: many ranges driven through one shared
//! [`RimeDevice`] from different threads (the Fig. 14 merge scenario)
//! must produce exactly what a single-threaded walk over the same
//! regions produces.

use rime_core::{ops, RimeConfig, RimeDevice};
use rime_workloads::keys::{generate_u64, KeyDistribution};

/// Loads `n_sets` disjoint regions and returns (device, regions, key sets).
fn setup(
    n_sets: usize,
    per_set: usize,
    seed: u64,
) -> (RimeDevice, Vec<rime_core::Region>, Vec<Vec<u64>>) {
    let dev = RimeDevice::new(RimeConfig::small());
    let mut regions = Vec::new();
    let mut sets = Vec::new();
    for s in 0..n_sets {
        let keys = generate_u64(per_set, KeyDistribution::Uniform, seed + s as u64);
        let region = dev.alloc(keys.len() as u64).unwrap();
        dev.write(region, 0, &keys).unwrap();
        regions.push(region);
        sets.push(keys);
    }
    (dev, regions, sets)
}

#[test]
fn four_concurrent_ranges_match_single_threaded_reference() {
    let (dev, regions, sets) = setup(4, 300, 9001);

    // Single-threaded reference: drain each region in isolation.
    let mut want: Vec<Vec<u64>> = Vec::new();
    for (idx, &r) in regions.iter().enumerate() {
        let got = ops::sort_into_vec::<u64>(&dev, r).unwrap();
        let mut sorted = sets[idx].clone();
        sorted.sort_unstable();
        assert_eq!(got, sorted, "region {idx} sequential reference");
        want.push(got);
    }

    // Concurrent pass: one thread per range, sharing `&dev`.
    let dev = &dev;
    let results: Vec<Vec<u64>> = std::thread::scope(|scope| {
        let handles: Vec<_> = regions
            .iter()
            .map(|&r| scope.spawn(move || ops::sort_into_vec::<u64>(dev, r).unwrap()))
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    assert_eq!(results, want);
}

#[test]
fn eight_threads_interleave_streams_over_shared_device() {
    let (dev, regions, sets) = setup(8, 150, 9100);
    let dev = &dev;
    let results: Vec<Vec<u64>> = std::thread::scope(|scope| {
        let handles: Vec<_> = regions
            .iter()
            .map(|&r| {
                scope.spawn(move || {
                    // Alternate batch sizes by interleaving stream pulls so
                    // threads hit the device mid-range, not in lockstep.
                    let mut stream = ops::sorted::<u64>(dev, r).unwrap();
                    let mut out = Vec::new();
                    while let Some(v) = stream.try_next().unwrap() {
                        out.push(v);
                        std::thread::yield_now();
                    }
                    out
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for (idx, got) in results.iter().enumerate() {
        let mut want = sets[idx].clone();
        want.sort_unstable();
        assert_eq!(got, &want, "region {idx}");
    }
}

#[test]
fn parallel_merge_scenario_matches_sequential_merge() {
    // Fig. 14: merging m ranges; the parallel path runs every range on
    // its own thread through the shared device.
    let (dev, regions, sets) = setup(5, 200, 9200);
    let par = ops::merge_parallel::<u64>(&dev, &regions).unwrap();
    let seq = ops::merge::<u64>(&dev, &regions).unwrap();
    assert_eq!(par, seq);
    let mut want: Vec<u64> = sets.into_iter().flatten().collect();
    want.sort_unstable();
    assert_eq!(par, want);
}

#[test]
fn concurrent_batched_top_k_over_disjoint_regions() {
    let (dev, regions, sets) = setup(6, 120, 9300);
    let dev = &dev;
    let results: Vec<Vec<u64>> = std::thread::scope(|scope| {
        let handles: Vec<_> = regions
            .iter()
            .map(|&r| scope.spawn(move || ops::smallest_k::<u64>(dev, r, 25).unwrap()))
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for (idx, got) in results.iter().enumerate() {
        let mut want = sets[idx].clone();
        want.sort_unstable();
        want.truncate(25);
        assert_eq!(got, &want, "region {idx}");
    }
}
