//! Crash-point injection harness for the command-plane journal.
//!
//! The property: for a random command sequence over 1..4 chips, killing
//! the executor at *every* crash site — mid-write, mid-extraction,
//! mid-rearm, mid-checkpoint, between intent and outcome — and then
//! recovering from the journal always reconstructs a device that is
//! bit-identical to an uncrashed run: same raw chip snapshots, same
//! allocation map, same OpCounters, same interface transfers, and the
//! same outcomes for the commands resumed after recovery. A second
//! property tears the final journal record at arbitrary byte cuts (a
//! crash mid-append) and demands the same convergence.
//!
//! Requires `--features crash-test`; without it a pointer test points
//! the way.

#[cfg(not(feature = "crash-test"))]
#[test]
fn crash_harness_requires_the_crash_test_feature() {
    // The fault-injection hooks compile to inline no-ops without the
    // feature, so there is nothing to drive here. Run
    //     cargo test -p rime-bench --features crash-test
    // to sweep every crash site (CI's crash-smoke job does).
}

#[cfg(feature = "crash-test")]
mod harness {
    use std::borrow::Cow;
    use std::panic::{self, AssertUnwindSafe};
    use std::sync::Once;

    use proptest::prelude::*;
    use rime_core::{
        journal, Command, CrashPoint, CrashSignal, Direction, DriverConfig, Executor,
        JournalConfig, KeyFormat, MemJournalStore, OpCounters, Outcome, Region, RimeConfig,
        RimeError,
    };
    use rime_memristive::{ArrayTiming, ChipGeometry, ChipState};

    /// A tiny device: 64-slot chips so a handful of commands spans
    /// mats, and an aggressive page granularity so allocation state is
    /// non-trivial.
    fn test_config(chips: u32) -> RimeConfig {
        RimeConfig {
            channels: 1,
            chips_per_channel: chips,
            chip_geometry: ChipGeometry::tiny(),
            timing: ArrayTiming::table1(),
            driver: DriverConfig {
                page_slots: 8,
                startup_pages: 2,
                growth_pages: 1,
            },
        }
    }

    /// Short cadence so the sweep crosses checkpoint boundaries.
    fn jconfig() -> JournalConfig {
        JournalConfig {
            checkpoint_every: 3,
        }
    }

    fn cases() -> u32 {
        std::env::var("CRASH_PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(8)
    }

    /// Injected crashes panic on purpose — many times per property.
    /// Silence exactly those payloads (the raw [`CrashSignal`] and the
    /// dispatch-worker rethrow) so real failures still print.
    fn silence_injected_panics() {
        static ONCE: Once = Once::new();
        ONCE.call_once(|| {
            let prev = panic::take_hook();
            panic::set_hook(Box::new(move |info| {
                let payload = info.payload();
                let injected = payload.downcast_ref::<CrashSignal>().is_some()
                    || payload
                        .downcast_ref::<String>()
                        .is_some_and(|s| s.contains("chip dispatch worker panicked"))
                    || payload
                        .downcast_ref::<&str>()
                        .is_some_and(|s| s.contains("chip dispatch worker panicked"));
                if !injected {
                    prev(info);
                }
            }));
        });
    }

    /// Scripted operations name regions by index into the list of
    /// still-live allocations, so every lowered command is valid for
    /// *some* device state without the generator knowing outcomes.
    #[derive(Debug, Clone)]
    enum ScriptOp {
        Alloc {
            len: u64,
        },
        Write {
            region_ix: usize,
            offset: u64,
            raw: Vec<u64>,
        },
        Init {
            region_ix: usize,
            len: u64,
        },
        Extract {
            region_ix: usize,
            direction: Direction,
        },
        Batch {
            region_ix: usize,
            direction: Direction,
            k: usize,
        },
        Fifo {
            region_ix: usize,
        },
        Free {
            region_ix: usize,
        },
    }

    fn direction() -> impl Strategy<Value = Direction> {
        prop_oneof![Just(Direction::Min), Just(Direction::Max)]
    }

    fn op_strategy() -> impl Strategy<Value = ScriptOp> {
        prop_oneof![
            (1u64..10).prop_map(|len| ScriptOp::Alloc { len }),
            (0usize..8, 0u64..4, prop::collection::vec(0u64..1000, 1..6)).prop_map(
                |(region_ix, offset, raw)| ScriptOp::Write {
                    region_ix,
                    offset,
                    raw
                }
            ),
            (0usize..8, 1u64..10).prop_map(|(region_ix, len)| ScriptOp::Init { region_ix, len }),
            (0usize..8, direction()).prop_map(|(region_ix, direction)| ScriptOp::Extract {
                region_ix,
                direction
            }),
            (0usize..8, direction(), 1usize..5).prop_map(|(region_ix, direction, k)| {
                ScriptOp::Batch {
                    region_ix,
                    direction,
                    k,
                }
            }),
            (0usize..8).prop_map(|region_ix| ScriptOp::Fifo { region_ix }),
            (0usize..8).prop_map(|region_ix| ScriptOp::Free { region_ix }),
        ]
    }

    /// A fixed script prefix so *every* case crosses the interesting
    /// sites — mid-write, mid-extraction (worker threads), and (at
    /// `checkpoint_every = 3`) a mid-checkpoint — before the random
    /// suffix takes over.
    fn preamble() -> Vec<ScriptOp> {
        vec![
            ScriptOp::Alloc { len: 6 },
            ScriptOp::Write {
                region_ix: 0,
                offset: 0,
                raw: vec![9, 2, 7, 5, 8, 4],
            },
            ScriptOp::Init {
                region_ix: 0,
                len: 6,
            },
            ScriptOp::Batch {
                region_ix: 0,
                direction: Direction::Min,
                k: 2,
            },
        ]
    }

    /// Lowers one op against the live-region list; with no region to
    /// name yet, the op degrades to a 1-slot allocation.
    fn lower(op: &ScriptOp, regions: &[Region]) -> Command<'static> {
        let pick = |ix: usize| {
            if regions.is_empty() {
                None
            } else {
                Some(regions[ix % regions.len()])
            }
        };
        let fmt = KeyFormat::UNSIGNED64;
        match *op {
            ScriptOp::Alloc { len } => Command::Alloc { len },
            ScriptOp::Write {
                region_ix,
                offset,
                ref raw,
            } => match pick(region_ix) {
                Some(region) => Command::Write {
                    region,
                    offset,
                    raw: Cow::Owned(raw.clone()),
                    format: fmt,
                },
                None => Command::Alloc { len: 1 },
            },
            ScriptOp::Init { region_ix, len } => match pick(region_ix) {
                Some(region) => Command::Init {
                    region,
                    offset: 0,
                    len,
                    format: fmt,
                },
                None => Command::Alloc { len: 1 },
            },
            ScriptOp::Extract {
                region_ix,
                direction,
            } => match pick(region_ix) {
                Some(region) => Command::Extract {
                    region,
                    format: fmt,
                    direction,
                },
                None => Command::Alloc { len: 1 },
            },
            ScriptOp::Batch {
                region_ix,
                direction,
                k,
            } => match pick(region_ix) {
                Some(region) => Command::ExtractBatch {
                    region,
                    format: fmt,
                    direction,
                    k,
                },
                None => Command::Alloc { len: 1 },
            },
            ScriptOp::Fifo { region_ix } => match pick(region_ix) {
                Some(region) => Command::FifoNext { region },
                None => Command::Alloc { len: 1 },
            },
            ScriptOp::Free { region_ix } => match pick(region_ix) {
                Some(region) => Command::Free { region },
                None => Command::Alloc { len: 1 },
            },
        }
    }

    /// Everything "bit-identical" means.
    type Fingerprint = (
        Vec<ChipState>,
        (u64, Vec<(u64, u64)>),
        OpCounters,
        Vec<OpCounters>,
        u64,
    );

    fn fingerprint(exec: &Executor) -> Fingerprint {
        (
            exec.chip_states(),
            exec.allocation_map(),
            exec.counters(),
            exec.per_chip_counters(),
            exec.interface_transfers(),
        )
    }

    /// The uncrashed oracle run. It also counts the crash sites (a
    /// counting injector never fires) and keeps its journal bytes for
    /// the torn-tail sweep.
    struct Reference {
        commands: Vec<Command<'static>>,
        outcomes: Vec<Result<Outcome, RimeError>>,
        fingerprint: Fingerprint,
        sites: u64,
        journal_bytes: Vec<u8>,
    }

    fn build_reference(chips: u32, ops: &[ScriptOp]) -> Reference {
        let counter = CrashPoint::counting();
        let store = MemJournalStore::new();
        let exec = Executor::new(test_config(chips));
        exec.attach_journal(Box::new(store.clone()), jconfig())
            .expect("attach reference journal");
        exec.install_crash_point(Some(counter.clone()));
        let mut commands = Vec::new();
        let mut outcomes = Vec::new();
        let mut regions: Vec<Region> = Vec::new();
        for op in ops {
            let cmd = lower(op, &regions);
            let out = exec.execute(cmd.clone());
            match (&cmd, &out) {
                (_, Ok(Outcome::Region(r))) => regions.push(*r),
                (Command::Free { region }, Ok(_)) => regions.retain(|r| r != region),
                _ => {}
            }
            commands.push(cmd);
            outcomes.push(out);
        }
        exec.install_crash_point(None);
        Reference {
            commands,
            outcomes,
            fingerprint: fingerprint(&exec),
            sites: counter.hits(),
            journal_bytes: store.snapshot(),
        }
    }

    /// Recovers from `store`, resumes the not-yet-committed suffix of
    /// the script, and demands outcome-by-outcome and bit-for-bit
    /// convergence with the uncrashed oracle.
    fn recover_resume_and_check(
        chips: u32,
        store: MemJournalStore,
        reference: &Reference,
        context: &str,
    ) -> Result<(), TestCaseError> {
        let (rec, report) = Executor::recover(test_config(chips), Box::new(store), jconfig())
            .unwrap_or_else(|e| panic!("{context}: recovery failed: {e}"));
        let from = report.committed as usize;
        prop_assert!(
            from <= reference.commands.len(),
            "{}: recovered committed={} beyond the script",
            context,
            from
        );
        if let Some(ordinal) = report.interrupted {
            prop_assert_eq!(
                ordinal as usize,
                from,
                "{}: the in-doubt command is the next to resubmit",
                context
            );
        }
        for i in from..reference.commands.len() {
            let out = rec.execute(reference.commands[i].clone());
            prop_assert_eq!(
                &out,
                &reference.outcomes[i],
                "{}: resumed command {} diverged",
                context,
                i
            );
        }
        prop_assert_eq!(
            fingerprint(&rec),
            reference.fingerprint.clone(),
            "{}: recovered device is not bit-identical",
            context
        );
        prop_assert_eq!(
            rec.journal_committed(),
            Some(reference.commands.len() as u64),
            "{}: journal did not resume counting",
            context
        );
        Ok(())
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(cases()))]

        /// Kill at every crash site (k-th telemetry/journal seq point),
        /// recover, resume, compare bit-for-bit.
        #[test]
        fn every_crash_site_recovers_bit_identically(
            chips in 1u32..5,
            ops in prop::collection::vec(op_strategy(), 3..8),
        ) {
            silence_injected_panics();
            let ops: Vec<ScriptOp> = preamble().into_iter().chain(ops).collect();
            let reference = build_reference(chips, &ops);
            prop_assert!(reference.sites > 0, "no crash sites counted");
            if std::env::var_os("CRASH_DEBUG").is_some() {
                eprintln!(
                    "chips={} ops={} sites={}",
                    chips,
                    reference.commands.len(),
                    reference.sites
                );
            }
            for k in 0..reference.sites {
                let store = MemJournalStore::new();
                let exec = Executor::new(test_config(chips));
                exec.attach_journal(Box::new(store.clone()), jconfig()).unwrap();
                let injector = CrashPoint::armed(k);
                exec.install_crash_point(Some(injector.clone()));
                let mut crashed = false;
                for cmd in &reference.commands {
                    match panic::catch_unwind(AssertUnwindSafe(|| exec.execute(cmd.clone()))) {
                        Ok(_) => {}
                        Err(payload) => {
                            if !injector.fired() {
                                // A real bug, not our injection.
                                panic::resume_unwind(payload);
                            }
                            crashed = true;
                            break;
                        }
                    }
                }
                drop(exec);
                prop_assert!(
                    crashed,
                    "armed({}) never fired although counting saw {} sites",
                    k,
                    reference.sites
                );
                recover_resume_and_check(chips, store, &reference, &format!("site {k}"))?;
            }
        }

        /// Tear the final journal record at arbitrary byte cuts — the
        /// on-disk image a crash mid-append leaves behind — and demand
        /// the same convergence.
        #[test]
        fn a_torn_final_record_recovers_bit_identically(
            chips in 1u32..5,
            ops in prop::collection::vec(op_strategy(), 3..8),
        ) {
            silence_injected_panics();
            let ops: Vec<ScriptOp> = preamble().into_iter().chain(ops).collect();
            let reference = build_reference(chips, &ops);
            let bytes = &reference.journal_bytes;
            let scanned = journal::scan(bytes).expect("reference journal scans clean");
            prop_assert!(!scanned.torn_tail);
            let last_offset = scanned.records.last().expect("journal has records").0 as usize;
            // Every cut strictly inside the final record tears it.
            // Sample the range (bounded) but always include the
            // single-missing-byte cut.
            let lo = last_offset + 1;
            let hi = bytes.len();
            let stride = ((hi - lo) / 12).max(1);
            let mut cuts: Vec<usize> = (lo..hi).step_by(stride).collect();
            cuts.push(hi - 1);
            cuts.dedup();
            for cut in cuts {
                let store = MemJournalStore::from_bytes(bytes[..cut].to_vec());
                let probe = journal::scan(&store.snapshot()).expect("torn scan is tolerated");
                prop_assert!(probe.torn_tail, "cut at {} did not tear", cut);
                recover_resume_and_check(chips, store, &reference, &format!("cut {cut}"))?;
            }
        }
    }

    /// The injected-fault path is exercised separately from crashes:
    /// a chip failing mid-`ExtractBatch` surfaces the lowest-indexed
    /// chip's error, and the journal still records the outcome (see
    /// `tests/mmio_api_differential.rs` for the differential version).
    #[test]
    fn recovery_detects_unreplayable_injected_faults() {
        silence_injected_panics();
        // A fault injected into the *original* run is not replayable:
        // re-execution cannot reproduce the error, and recovery says so
        // instead of handing back a device that silently diverges.
        let store = MemJournalStore::new();
        let exec = Executor::new(test_config(2));
        exec.attach_journal(Box::new(store.clone()), jconfig())
            .unwrap();
        let r = match exec.execute(Command::Alloc { len: 4 }).unwrap() {
            Outcome::Region(r) => r,
            other => panic!("{other:?}"),
        };
        exec.execute(Command::Write {
            region: r,
            offset: 0,
            raw: Cow::Owned(vec![9, 2, 7, 5]),
            format: KeyFormat::UNSIGNED64,
        })
        .unwrap();
        exec.execute(Command::Init {
            region: r,
            offset: 0,
            len: 4,
            format: KeyFormat::UNSIGNED64,
        })
        .unwrap();
        exec.inject_extract_fault(0, RimeError::NotInitialized);
        let err = exec
            .execute(Command::ExtractBatch {
                region: r,
                format: KeyFormat::UNSIGNED64,
                direction: Direction::Min,
                k: 2,
            })
            .unwrap_err();
        assert_eq!(err, RimeError::NotInitialized);
        drop(exec);
        let err = Executor::recover(test_config(2), Box::new(store), jconfig()).unwrap_err();
        assert!(
            matches!(
                err,
                RimeError::Journal(rime_core::JournalError::ReplayDivergence { .. })
            ),
            "{err:?}"
        );
    }
}
