//! MMIO ↔ Rust-API differential property test.
//!
//! Both front-ends lower into the same `rime_core::cmd::Executor`, so a
//! random command sequence driven through the register file must be
//! indistinguishable — statuses, latched results, typed error codes,
//! operation counters, interface transfers — from the same sequence
//! driven through the typed API against a device with an identical
//! full-capacity window region.

use std::collections::VecDeque;

use proptest::prelude::*;
use rime_core::mmio::{cmd, errcode, format_code, regs, status, MmioInterface, DATA_BASE};
use rime_core::{Direction, KeyFormat, RimeConfig, RimeDevice, RimeError};

/// One step of the random register-level workload.
#[derive(Debug, Clone)]
enum Op {
    /// Store a raw value through the data window.
    Store { slot: u64, value: u64 },
    /// Select one of the staged formats (index into `FORMATS`).
    SetFormat(usize),
    /// Program BEGIN/END and ring the INIT doorbell.
    Init { begin: u64, end: u64 },
    /// Ring MIN or MAX.
    Extract { max: bool },
    /// Program COUNT and ring MIN_K or MAX_K.
    ExtractBatch { max: bool, k: u64 },
    /// Ring FIFO_NEXT.
    FifoNext,
}

/// Formats the workload cycles through; `None` stages a deliberately
/// undecodable register value.
const FORMATS: [Option<KeyFormat>; 4] = [
    Some(KeyFormat::UNSIGNED64),
    Some(KeyFormat::SIGNED32),
    Some(KeyFormat::FLOAT32),
    None,
];

/// The FORMAT register value staging `FORMATS[i]`.
fn format_reg(i: usize) -> u64 {
    FORMATS[i].map_or(u64::MAX, format_code)
}

/// Mirrors the private `errcode_of` mapping: the typed API error a
/// command returns must park exactly this code in the ERROR register.
fn expected_errcode(error: &RimeError) -> u64 {
    match error {
        RimeError::InvalidRegion => errcode::INVALID_REGION,
        RimeError::OutOfBounds { .. } => errcode::OUT_OF_BOUNDS,
        RimeError::NotInitialized => errcode::NOT_INITIALIZED,
        RimeError::TypeMismatch { .. } => errcode::TYPE_MISMATCH,
        RimeError::OutOfContiguousMemory { .. } => errcode::OUT_OF_MEMORY,
        RimeError::Chip(_) => errcode::CHIP,
        _ => unreachable!("unmapped error variant"),
    }
}

/// The typed-API twin of the register file: one full-capacity region,
/// a result latch, and a presentation FIFO, updated with the register
/// semantics but driven through `RimeDevice` methods.
struct ApiTwin {
    device: RimeDevice,
    window: rime_core::Region,
    format_code: u64,
    status: u64,
    error: u64,
    latch: (u64, u64), // (value, addr)
    fifo: VecDeque<(u64, u64)>,
}

impl ApiTwin {
    fn new() -> ApiTwin {
        let device = RimeDevice::new(RimeConfig::small());
        let window = device.alloc(device.capacity()).unwrap();
        ApiTwin {
            device,
            window,
            format_code: format_code(KeyFormat::UNSIGNED64),
            status: status::OK,
            error: errcode::NONE,
            latch: (0, 0),
            fifo: VecDeque::new(),
        }
    }

    fn format(&self) -> Option<KeyFormat> {
        rime_core::mmio::decode_format(self.format_code)
    }

    fn fault(&mut self, code: u64) {
        self.status = status::ERROR;
        self.error = code;
    }

    fn advance_fifo(&mut self) {
        match self.fifo.pop_front() {
            Some((slot, raw)) => {
                self.latch = (raw, slot);
                self.status = status::OK;
            }
            None => self.status = status::EXHAUSTED,
        }
    }

    fn apply(&mut self, op: &Op, begin: u64, end: u64) {
        match *op {
            Op::Store { slot, value } => {
                let format = self.format().unwrap_or(KeyFormat::UNSIGNED64);
                match self.device.write_raw(self.window, slot, &[value], format) {
                    Ok(()) => {
                        self.status = status::OK;
                        self.error = errcode::NONE;
                    }
                    Err(e) => self.fault(expected_errcode(&e)),
                }
            }
            Op::SetFormat(i) => self.format_code = format_reg(i),
            Op::FifoNext => {
                self.error = errcode::NONE;
                self.advance_fifo();
            }
            Op::Init { .. } => {
                self.error = errcode::NONE;
                let Some(format) = self.format() else {
                    self.fault(errcode::BAD_FORMAT);
                    return;
                };
                self.fifo.clear();
                match self
                    .device
                    .init_raw(self.window, begin, end.saturating_sub(begin), format)
                {
                    Ok(()) => self.status = status::OK,
                    Err(e) => self.fault(expected_errcode(&e)),
                }
            }
            Op::Extract { max } => {
                self.error = errcode::NONE;
                let Some(format) = self.format() else {
                    self.fault(errcode::BAD_FORMAT);
                    return;
                };
                self.fifo.clear();
                let direction = if max { Direction::Max } else { Direction::Min };
                match self.device.next_extreme_raw(self.window, format, direction) {
                    Ok(Some((slot, raw))) => {
                        self.latch = (raw, slot);
                        self.status = status::OK;
                    }
                    Ok(None) => self.status = status::EXHAUSTED,
                    Err(e) => self.fault(expected_errcode(&e)),
                }
            }
            Op::ExtractBatch { max, k } => {
                self.error = errcode::NONE;
                let Some(format) = self.format() else {
                    self.fault(errcode::BAD_FORMAT);
                    return;
                };
                self.fifo.clear();
                let direction = if max { Direction::Max } else { Direction::Min };
                let want = usize::try_from(k).unwrap_or(usize::MAX);
                match self
                    .device
                    .next_extremes_raw(self.window, format, direction, want)
                {
                    Ok(results) => {
                        self.fifo.extend(results);
                        self.advance_fifo();
                    }
                    Err(e) => self.fault(expected_errcode(&e)),
                }
            }
        }
    }
}

fn drive_mmio(m: &mut MmioInterface, op: &Op, begin: u64, end: u64) {
    match *op {
        Op::Store { slot, value } => m.write(DATA_BASE + 8 * slot, value),
        Op::SetFormat(i) => m.write(regs::FORMAT, format_reg(i)),
        Op::Init { .. } => {
            m.write(regs::BEGIN, begin);
            m.write(regs::END, end);
            m.write(regs::COMMAND, cmd::INIT);
        }
        Op::Extract { max } => {
            m.write(regs::COMMAND, if max { cmd::MAX } else { cmd::MIN });
        }
        Op::ExtractBatch { max, k } => {
            m.write(regs::COUNT, k);
            m.write(regs::COMMAND, if max { cmd::MAX_K } else { cmd::MIN_K });
        }
        Op::FifoNext => m.write(regs::COMMAND, cmd::FIFO_NEXT),
    }
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u64..24, any::<u32>()).prop_map(|(slot, v)| Op::Store {
            slot,
            value: v as u64,
        }),
        (0usize..FORMATS.len()).prop_map(Op::SetFormat),
        (0u64..20, 0u64..24).prop_map(|(begin, end)| Op::Init { begin, end }),
        any::<bool>().prop_map(|max| Op::Extract { max }),
        (any::<bool>(), 0u64..10).prop_map(|(max, k)| Op::ExtractBatch { max, k }),
        Just(Op::FifoNext),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn mmio_and_api_are_indistinguishable(
        ops in prop::collection::vec(op_strategy(), 1..40),
    ) {
        let mut mmio = MmioInterface::new(RimeConfig::small());
        let mut api = ApiTwin::new();
        let mut last_init = (0u64, 0u64);
        for (step, op) in ops.iter().enumerate() {
            if let Op::Init { begin, end } = *op {
                last_init = (begin, end);
            }
            let (begin, end) = last_init;
            drive_mmio(&mut mmio, op, begin, end);
            api.apply(op, begin, end);
            prop_assert_eq!(
                mmio.read(regs::STATUS), api.status,
                "status diverged at step {} ({:?})", step, op
            );
            prop_assert_eq!(
                mmio.read(regs::ERROR), api.error,
                "errcode diverged at step {} ({:?})", step, op
            );
            prop_assert_eq!(
                (mmio.read(regs::RESULT_VALUE), mmio.read(regs::RESULT_ADDR)),
                api.latch,
                "result latch diverged at step {} ({:?})", step, op
            );
            prop_assert_eq!(
                mmio.read(regs::RESULT_COUNT), api.fifo.len() as u64,
                "fifo depth diverged at step {} ({:?})", step, op
            );
        }
        // Both devices executed the identical command stream, so the
        // telemetry they accumulated must match exactly.
        prop_assert_eq!(mmio.device().counters(), api.device.counters());
        prop_assert_eq!(
            mmio.device().interface_transfers(),
            api.device.interface_transfers()
        );
        prop_assert_eq!(
            mmio.device().per_chip_counters(),
            api.device.per_chip_counters()
        );
    }
}

/// One-chip-fails-mid-`ExtractBatch` sequences (needs `--features
/// crash-test` for the fault injectors): the register file must park
/// the *lowest-indexed* failing chip's error code, and the journal's
/// outcome record must still carry every chip's counter delta — the
/// chips did the work even though the command failed.
#[cfg(feature = "crash-test")]
mod chip_fault_injection {
    use super::*;
    use rime_core::journal::{self, JournalConfig, JournalRecord, MemJournalStore};
    use rime_core::OpCounters;
    use rime_memristive::{ArrayTiming, ChipGeometry};

    /// 4 tiny chips (64 slots each) on one channel, so a 136-slot
    /// initialized range spans chips 0, 1, and 2.
    const SPAN: u64 = 136;

    fn tiny4() -> RimeConfig {
        RimeConfig {
            channels: 1,
            chips_per_channel: 4,
            chip_geometry: ChipGeometry::tiny(),
            timing: ArrayTiming::table1(),
            driver: rime_core::DriverConfig::default(),
        }
    }

    /// A journaled MMIO device with keys stored and initialized across
    /// three chips, ready for a batched extraction.
    fn faulted_batch_setup() -> (MmioInterface, MemJournalStore) {
        let mut mmio = MmioInterface::new(tiny4());
        let store = MemJournalStore::new();
        mmio.device()
            .attach_journal(
                Box::new(store.clone()),
                JournalConfig {
                    checkpoint_every: 1024,
                },
            )
            .unwrap();
        for slot in 0..SPAN {
            mmio.write(DATA_BASE + 8 * slot, (slot * 37) % 251 + 1);
        }
        mmio.write(regs::BEGIN, 0);
        mmio.write(regs::END, SPAN);
        mmio.write(regs::COMMAND, cmd::INIT);
        assert_eq!(mmio.read(regs::STATUS), status::OK);
        (mmio, store)
    }

    #[test]
    fn lowest_chip_index_error_wins_when_chips_fail_mid_batch() {
        let (mut mmio, _store) = faulted_batch_setup();
        // Two chips fail, injected in *descending* order: the surfaced
        // error must be chip 1's (the lowest failing index), proving
        // the deterministic chip-order fold, not injection order or
        // worker scheduling, decides.
        mmio.device()
            .inject_extract_fault(2, RimeError::NotInitialized);
        mmio.device()
            .inject_extract_fault(1, RimeError::OutOfBounds { offset: 5, len: 1 });
        mmio.write(regs::COUNT, 3);
        mmio.write(regs::COMMAND, cmd::MIN_K);
        assert_eq!(mmio.read(regs::STATUS), status::ERROR);
        assert_eq!(mmio.read(regs::ERROR), errcode::OUT_OF_BOUNDS);
        // The injected faults are one-shot: the retry engages the chips
        // again and succeeds, with the global minimum latched.
        mmio.write(regs::COMMAND, cmd::MIN_K);
        assert_eq!(mmio.read(regs::STATUS), status::OK);
        assert_eq!(mmio.read(regs::ERROR), errcode::NONE);
        assert_eq!(mmio.read(regs::RESULT_VALUE), 1);
    }

    #[test]
    fn a_failed_batch_still_journals_every_chips_delta() {
        let (mut mmio, store) = faulted_batch_setup();
        let before = mmio.device().journal_committed().unwrap();
        mmio.device()
            .inject_extract_fault(0, RimeError::NotInitialized);
        mmio.write(regs::COUNT, 2);
        mmio.write(regs::COMMAND, cmd::MIN_K);
        assert_eq!(mmio.read(regs::ERROR), errcode::NOT_INITIALIZED);
        // The failure committed: intent and outcome are both durable.
        assert_eq!(mmio.device().journal_committed(), Some(before + 1));
        let scanned = journal::scan(&store.snapshot()).unwrap();
        let (ordinal, result, effects) = scanned
            .records
            .iter()
            .rev()
            .find_map(|(_, r)| match r {
                JournalRecord::Outcome {
                    ordinal,
                    result,
                    effects,
                } => Some((*ordinal, result.clone(), effects.clone())),
                _ => None,
            })
            .expect("an outcome record");
        assert_eq!(ordinal, before);
        assert_eq!(result, Err(RimeError::NotInitialized));
        // Every spanned chip ran and its delta survived into the
        // journal — including chip 0, whose result was replaced by the
        // injected fault *after* the work was done.
        let mut chips: Vec<u32> = effects.chip_deltas().iter().map(|&(c, _)| c).collect();
        chips.sort_unstable();
        assert_eq!(chips, vec![0, 1, 2]);
        for (chip, delta) in effects.chip_deltas() {
            assert_ne!(
                *delta,
                OpCounters::default(),
                "chip {chip} recorded an empty delta"
            );
        }
        // An injected fault is *not replayable*: recovery re-executes
        // the tail, gets a success where the journal says failure, and
        // refuses with a typed divergence instead of handing back a
        // silently different device.
        drop(mmio);
        let err = RimeDevice::recover(
            tiny4(),
            Box::new(store),
            JournalConfig {
                checkpoint_every: 1024,
            },
        )
        .unwrap_err();
        assert!(
            matches!(
                err,
                RimeError::Journal(rime_core::JournalError::ReplayDivergence { ordinal: o })
                    if o == before
            ),
            "{err:?}"
        );
        // (With no fault injected, the same journal recovers cleanly —
        // tests/crash_recovery.rs proves that exhaustively.)
    }
}
