//! End-to-end sorting: the full stack (workload generator → RIME device →
//! ordered stream) against the baseline kernels and `std` sorts.

use rime_core::{ops, RimeConfig, RimeDevice};
use rime_kernels::exec::{heap_sort, merge_sort, quick_sort, radix_sort, TracedMemory};
use rime_kernels::rime_sort::sort_via_device;
use rime_workloads::keys::{generate_f32_signed, generate_i64, generate_u64, KeyDistribution};

#[test]
fn rime_and_all_baseline_kernels_agree() {
    let keys = generate_u64(4_000, KeyDistribution::Uniform, 1001);
    let mut want = keys.clone();
    want.sort_unstable();

    // RIME path.
    let mut dev = RimeDevice::new(RimeConfig::small());
    assert_eq!(sort_via_device(&mut dev, &keys, 4).unwrap(), want);

    // Baseline kernels.
    let mut mem = TracedMemory::untraced();
    let b = mem.add_buf(keys.clone());
    let out = merge_sort(&mut mem, b);
    assert_eq!(mem.into_buf(out), want);

    let mut mem = TracedMemory::untraced();
    let b = mem.add_buf(keys.clone());
    quick_sort(&mut mem, b);
    assert_eq!(mem.into_buf(b), want);

    let mut mem = TracedMemory::untraced();
    let b = mem.add_buf(keys.clone());
    let out = radix_sort(&mut mem, b);
    assert_eq!(mem.into_buf(out), want);

    let mut mem = TracedMemory::untraced();
    let b = mem.add_buf(keys);
    heap_sort(&mut mem, b);
    assert_eq!(mem.into_buf(b), want);
}

#[test]
fn rime_sorts_signed_keys_across_chips() {
    let keys = generate_i64(6_000, 1002);
    let dev = RimeDevice::new(RimeConfig::small());
    let region = dev.alloc(keys.len() as u64).unwrap();
    dev.write(region, 0, &keys).unwrap();
    let got = ops::sort_into_vec::<i64>(&dev, region).unwrap();
    let mut want = keys;
    want.sort_unstable();
    assert_eq!(got, want);
}

#[test]
fn rime_sorts_floats_in_total_order() {
    let mut keys = generate_f32_signed(2_000, 1003);
    keys.extend([0.0, -0.0, f32::INFINITY, f32::NEG_INFINITY]);
    let got = rime_kernels::rime_sort::sort_small(&keys).unwrap();
    let mut want = keys;
    want.sort_unstable_by(f32::total_cmp);
    assert_eq!(
        got.iter().map(|f| f.to_bits()).collect::<Vec<_>>(),
        want.iter().map(|f| f.to_bits()).collect::<Vec<_>>()
    );
}

#[test]
fn sorted_streams_resume_after_partial_consumption() {
    // Consume half the stream, write fresh data elsewhere, finish later.
    let dev = RimeDevice::new(RimeConfig::small());
    let region = dev.alloc(100).unwrap();
    let keys = generate_u64(100, KeyDistribution::Uniform, 1004);
    dev.write(region, 0, &keys).unwrap();
    dev.init_all::<u64>(region).unwrap();

    let mut got = Vec::new();
    for _ in 0..50 {
        got.push(dev.rime_min::<u64>(region).unwrap().unwrap().1);
    }
    // Unrelated activity on another region must not disturb the stream.
    let other = dev.alloc(10).unwrap();
    dev.write(other, 0, &[1u64, 2, 3]).unwrap();
    let _ = ops::sort_into_vec::<u64>(&dev, other).unwrap();

    while let Some((_, v)) = dev.rime_min::<u64>(region).unwrap() {
        got.push(v);
    }
    let mut want = keys;
    want.sort_unstable();
    assert_eq!(got, want);
}

#[test]
fn exhaustive_small_permutations() {
    // Every permutation of 6 distinct keys sorts correctly.
    fn permutations(mut v: Vec<u64>, k: usize, out: &mut Vec<Vec<u64>>) {
        if k == v.len() {
            out.push(v);
            return;
        }
        for i in k..v.len() {
            v.swap(k, i);
            permutations(v.clone(), k + 1, out);
            v.swap(k, i);
        }
    }
    let mut perms = Vec::new();
    permutations(vec![3, 1, 4, 1, 5, 9], 0, &mut perms);
    let dev = RimeDevice::new(RimeConfig::small());
    let region = dev.alloc(6).unwrap();
    for perm in perms {
        dev.write(region, 0, &perm).unwrap();
        let got = ops::sort_into_vec::<u64>(&dev, region).unwrap();
        assert_eq!(got, vec![1, 1, 3, 4, 5, 9], "input {perm:?}");
    }
}
