//! Cross-crate observability tests: telemetry fan-in ordering and
//! metrics-snapshot determinism.
//!
//! The command plane's contract is that every sink attached to the hub
//! observes the same gap-free, strictly increasing `seq` stream — even
//! when commands are issued concurrently from many threads against a
//! multi-chip device. These tests wrap three heterogeneous sinks
//! ([`MetricsSink`], [`CounterSink`], [`TraceRecorder`]) in a seq-logging
//! shim and drive them from a threaded `ExtractBatch` workload, then pin
//! the determinism contract of [`RimeDevice::metrics_snapshot`]: masked
//! exports are byte-identical across identical runs, and the modeled
//! chip-op metrics are bit-identical across every [`ParallelPolicy`].

use std::sync::{Arc, Mutex, PoisonError};

use rime_core::telemetry::{shared, CounterSink, Telemetry, TelemetryEvent};
use rime_core::trace::TraceRecorder;
use rime_core::{
    Direction, DriverConfig, KeyFormat, MetricValue, MetricsRegistry, MetricsSink, ParallelPolicy,
    RimeConfig, RimeDevice,
};
use rime_memristive::{ArrayTiming, ChipGeometry};

/// Four chips of 16 mats each, 1024 slots per chip.
fn config() -> RimeConfig {
    RimeConfig {
        channels: 2,
        chips_per_channel: 2,
        chip_geometry: ChipGeometry {
            banks: 1,
            subbanks_per_bank: 4,
            mats_per_subbank: 4,
            arrays_per_mat: 4,
            rows: 16,
            cols: 64,
        },
        timing: ArrayTiming::table1(),
        driver: DriverConfig::default(),
    }
}

fn keys(n: u64) -> Vec<u64> {
    (0..n)
        .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .collect()
}

/// Wraps any sink, logging each event's `seq` before delegating.
struct SeqLog<T: Telemetry> {
    inner: T,
    seen: Arc<Mutex<Vec<u64>>>,
}

impl<T: Telemetry> SeqLog<T> {
    fn new(inner: T) -> (SeqLog<T>, Arc<Mutex<Vec<u64>>>) {
        let seen = Arc::new(Mutex::new(Vec::new()));
        let log = SeqLog {
            inner,
            seen: seen.clone(),
        };
        (log, seen)
    }
}

impl<T: Telemetry> Telemetry for SeqLog<T> {
    fn record(&mut self, event: &TelemetryEvent<'_>) {
        self.seen
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(event.seq);
        self.inner.record(event);
    }
}

fn drain(seen: &Arc<Mutex<Vec<u64>>>) -> Vec<u64> {
    seen.lock().unwrap_or_else(PoisonError::into_inner).clone()
}

#[test]
fn all_sinks_observe_identical_seq_streams_under_concurrency() {
    let dev = RimeDevice::new(config());
    dev.set_parallel_policy(ParallelPolicy::Threads(2));

    let (metrics, metrics_seqs) = SeqLog::new(MetricsSink::new(
        MetricsRegistry::new(),
        ArrayTiming::table1(),
    ));
    let (counters, counter_seqs) = SeqLog::new(CounterSink::default());
    let (tracer, tracer_seqs) = SeqLog::new(TraceRecorder::new());
    dev.attach_telemetry(shared(metrics));
    dev.attach_telemetry(shared(counters));
    dev.attach_telemetry(shared(tracer));

    // One region per thread, spanning all four chips together, so
    // concurrent ExtractBatch commands race through the executor while
    // each one fans out across its own chips.
    let threads = 4;
    let per = dev.capacity() / threads;
    let regions: Vec<_> = (0..threads)
        .map(|_| dev.alloc(per).expect("alloc slice"))
        .collect();
    let dev = &dev;
    std::thread::scope(|scope| {
        for &region in &regions {
            scope.spawn(move || {
                let data = keys(per);
                dev.write_raw(region, 0, &data, KeyFormat::UNSIGNED64)
                    .expect("store");
                dev.init_raw(region, 0, per, KeyFormat::UNSIGNED64)
                    .expect("init");
                for k in [8usize, 16, 4] {
                    let hits = dev
                        .next_extremes_raw(region, KeyFormat::UNSIGNED64, Direction::Min, k)
                        .expect("batch");
                    assert_eq!(hits.len(), k);
                }
                let _ = dev.fifo_next_raw(region).expect("drain");
            });
        }
    });

    let a = drain(&metrics_seqs);
    let b = drain(&counter_seqs);
    let c = drain(&tracer_seqs);
    assert!(!a.is_empty(), "workload published events");
    assert_eq!(a, b, "MetricsSink and CounterSink saw different streams");
    assert_eq!(a, c, "MetricsSink and TraceRecorder saw different streams");
    // Strictly increasing and gap-free: the hub assigns seq under one
    // lock, so interleaved publishers can never reorder or skip.
    for pair in a.windows(2) {
        assert_eq!(pair[1], pair[0] + 1, "seq stream has a gap or reorder");
    }
}

/// Runs a fixed instrumented multi-chip workload and returns the masked
/// metrics snapshot JSON.
fn masked_run(policy: ParallelPolicy) -> (String, rime_core::Snapshot, rime_core::OpCounters) {
    let dev = RimeDevice::new(config());
    dev.enable_extraction_metrics();
    dev.set_parallel_policy(policy);
    let n = dev.capacity();
    let region = dev.alloc(n).expect("alloc");
    let data = keys(n);
    dev.write_raw(region, 0, &data, KeyFormat::UNSIGNED64)
        .expect("store");
    dev.init_raw(region, 0, n, KeyFormat::UNSIGNED64)
        .expect("init");
    for k in [32usize, 8] {
        let hits = dev
            .next_extremes_raw(region, KeyFormat::UNSIGNED64, Direction::Min, k)
            .expect("batch");
        assert_eq!(hits.len(), k);
    }
    let snapshot = dev.metrics_snapshot();
    (snapshot.masked().to_json(false), snapshot, dev.counters())
}

/// Regression for the PR-7 observability gap: a pooled extraction must
/// actually land samples in the pool wall-clock metrics — the committed
/// full-mode bench snapshot showed them all-zero because only the
/// *masked* snapshot (which rightly zeroes nondeterministic series) was
/// exported, hiding whether the probes ever fired. Pin the unmasked
/// truth: nonzero step-latency count, nonzero worker busy/park totals,
/// a crossover gauge, and masking zeroing all of them.
#[test]
fn pooled_extraction_lands_nonzero_pool_metrics() {
    let dev = RimeDevice::new(config());
    dev.enable_extraction_metrics();
    dev.set_parallel_policy(ParallelPolicy::Threads(3));
    let n = dev.capacity();
    let region = dev.alloc(n).expect("alloc");
    let data = keys(n);
    dev.write_raw(region, 0, &data, KeyFormat::UNSIGNED64)
        .expect("store");
    dev.init_raw(region, 0, n, KeyFormat::UNSIGNED64)
        .expect("init");
    let hits = dev
        .next_extremes_raw(region, KeyFormat::UNSIGNED64, Direction::Min, 16)
        .expect("batch");
    assert_eq!(hits.len(), 16);

    let snapshot = dev.metrics_snapshot();
    let find = |name: &str| {
        snapshot
            .metrics
            .iter()
            .filter(move |m| m.name == name)
            .collect::<Vec<_>>()
    };
    let steps = find("rime_pool_step_wall_ns");
    assert!(!steps.is_empty(), "pool step latency metric registered");
    let step_count: u64 = steps
        .iter()
        .map(|m| match &m.value {
            MetricValue::Histogram(h) => h.count,
            other => panic!("step latency is not a histogram: {other:?}"),
        })
        .sum();
    assert!(step_count > 0, "pooled extraction recorded no step latency");

    let busy: i128 = find("rime_pool_worker_busy_ns_total")
        .iter()
        .map(|m| match &m.value {
            MetricValue::Counter(v) => i128::from(*v),
            other => panic!("busy total is not a counter: {other:?}"),
        })
        .sum();
    assert!(busy > 0, "workers reported no busy time");
    assert!(
        !find("rime_pool_worker_park_ns_total").is_empty(),
        "park totals registered"
    );

    let crossover = find("rime_pool_crossover_mats");
    assert!(!crossover.is_empty(), "crossover gauge registered");
    assert!(
        crossover
            .iter()
            .any(|m| matches!(m.value, MetricValue::Gauge(v) if v >= 2)),
        "crossover gauge holds a measured value"
    );
    for m in &crossover {
        assert!(m.nondeterministic, "crossover is wall-clock-derived");
    }

    // Masking — the determinism contract — zeroes all of the above.
    let masked = snapshot.masked();
    for m in &masked.metrics {
        if m.name == "rime_pool_step_wall_ns" {
            match &m.value {
                MetricValue::Histogram(h) => assert_eq!(h.count, 0),
                other => panic!("{other:?}"),
            }
        }
        if m.name == "rime_pool_worker_busy_ns_total" {
            assert!(matches!(m.value, MetricValue::Counter(0)));
        }
        if m.name == "rime_pool_crossover_mats" {
            assert!(matches!(m.value, MetricValue::Gauge(0)));
        }
    }
}

#[test]
fn masked_snapshots_are_byte_identical_across_runs() {
    let (first, _, _) = masked_run(ParallelPolicy::Threads(3));
    let (second, _, _) = masked_run(ParallelPolicy::Threads(3));
    assert_eq!(
        first, second,
        "identical workloads must export identical masked snapshots"
    );
}

/// The modeled chip-op metrics are a scheduling-independent quantity:
/// every `ParallelPolicy` must report bit-identical `rime_chip_ops_total`
/// samples, and they must agree with the device's own `OpCounters`.
#[test]
fn chip_op_metrics_are_policy_independent_and_match_counters() {
    type OpSamples = Vec<(Vec<(String, String)>, u64)>;
    let mut baseline: Option<OpSamples> = None;
    for policy in [
        ParallelPolicy::Sequential,
        ParallelPolicy::SpawnPerStep(2),
        ParallelPolicy::Threads(2),
    ] {
        let (_, snapshot, counters) = masked_run(policy);
        let ops: OpSamples = snapshot
            .metrics
            .iter()
            .filter(|m| m.name == "rime_chip_ops_total")
            .map(|m| match m.value {
                MetricValue::Counter(v) => (m.labels.clone(), v),
                ref other => panic!("rime_chip_ops_total is not a counter: {other:?}"),
            })
            .collect();
        assert!(!ops.is_empty(), "chip op metrics were recorded");
        // Per-op totals across chips must equal the device counters.
        let total_for = |op: &str| -> u64 {
            ops.iter()
                .filter(|(labels, _)| labels.iter().any(|(k, v)| k == "op" && v == op))
                .map(|&(_, v)| v)
                .sum()
        };
        assert_eq!(
            total_for("column_search_steps"),
            counters.column_search_steps
        );
        assert_eq!(total_for("extractions"), counters.extractions);
        match &baseline {
            None => baseline = Some(ops),
            Some(first) => assert_eq!(
                first, &ops,
                "{policy:?} produced different chip-op metrics than Sequential"
            ),
        }
    }
}
