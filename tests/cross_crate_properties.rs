//! Property-based tests spanning crates: random workloads through the
//! full functional stack.

use proptest::prelude::*;
use rime_apps::{groupby, mergejoin, spq, RimePriorityQueue};
use rime_core::{ops, RimeConfig, RimeDevice};
use rime_workloads::{JoinTables, KvTable, PacketStream};

fn device() -> RimeDevice {
    RimeDevice::new(RimeConfig::small())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn device_sort_is_a_permutation_in_order(
        keys in prop::collection::vec(any::<u64>(), 1..200),
    ) {
        let dev = device();
        let region = dev.alloc(keys.len() as u64).unwrap();
        dev.write(region, 0, &keys).unwrap();
        let got = ops::sort_into_vec::<u64>(&dev, region).unwrap();
        let mut want = keys.clone();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn merge_equals_sort_of_concatenation(
        a in prop::collection::vec(any::<u32>(), 1..80),
        b in prop::collection::vec(any::<u32>(), 1..80),
        c in prop::collection::vec(any::<u32>(), 1..80),
    ) {
        let dev = device();
        let mut regions = Vec::new();
        for set in [&a, &b, &c] {
            let r = dev.alloc(set.len() as u64).unwrap();
            dev.write(r, 0, set).unwrap();
            regions.push(r);
        }
        let merged = ops::merge::<u32>(&dev, &regions).unwrap();
        let mut want: Vec<u32> = a.iter().chain(&b).chain(&c).copied().collect();
        want.sort_unstable();
        prop_assert_eq!(merged, want);
    }

    #[test]
    fn merge_join_is_multiset_intersection(
        a in prop::collection::vec(0u64..32, 1..60),
        b in prop::collection::vec(0u64..32, 1..60),
    ) {
        let dev = device();
        let ra = dev.alloc(a.len() as u64).unwrap();
        dev.write(ra, 0, &a).unwrap();
        let rb = dev.alloc(b.len() as u64).unwrap();
        dev.write(rb, 0, &b).unwrap();
        let joined = ops::merge_join::<u64>(&dev, ra, rb).unwrap();

        // Reference multiset intersection.
        let mut want = Vec::new();
        let mut counts = std::collections::HashMap::new();
        for &x in &b {
            *counts.entry(x).or_insert(0u64) += 1;
        }
        let mut sa = a.clone();
        sa.sort_unstable();
        for x in sa {
            if let Some(c) = counts.get_mut(&x) {
                if *c > 0 {
                    *c -= 1;
                    want.push(x);
                }
            }
        }
        prop_assert_eq!(joined, want);
    }

    #[test]
    fn rime_pq_matches_binary_heap(
        ops_list in prop::collection::vec(
            prop_oneof![
                (0u64..1_000_000).prop_map(Some), // push
                Just(None),                        // pop
            ],
            1..120,
        ),
    ) {
        let dev = device();
        let mut pq = RimePriorityQueue::new(&dev, 128).unwrap();
        let mut heap = std::collections::BinaryHeap::new();
        for op in ops_list {
            match op {
                Some(k) => {
                    if pq.spare() > 0 {
                        pq.push(&dev, k).unwrap();
                        heap.push(std::cmp::Reverse(k));
                    }
                }
                None => {
                    let want = heap.pop().map(|std::cmp::Reverse(k)| k);
                    let got = pq.pop_min(&dev).unwrap();
                    prop_assert_eq!(got, want);
                }
            }
        }
        prop_assert_eq!(pq.len(), heap.len() as u64);
    }

    #[test]
    fn multiway_join_is_multiset_intersection(
        a in prop::collection::vec(0u32..24, 1..40),
        b in prop::collection::vec(0u32..24, 1..40),
        c in prop::collection::vec(0u32..24, 1..40),
    ) {
        let dev = device();
        let mut regions = Vec::new();
        for set in [&a, &b, &c] {
            let r = dev.alloc(set.len() as u64).unwrap();
            dev.write(r, 0, set).unwrap();
            regions.push(r);
        }
        let joined = ops::merge_join_all::<u32>(&dev, &regions).unwrap();

        // Reference: per-key min count across the three multisets.
        let count = |v: &Vec<u32>, k: u32| v.iter().filter(|&&x| x == k).count();
        let mut want = Vec::new();
        for k in 0u32..24 {
            let m = count(&a, k).min(count(&b, k)).min(count(&c, k));
            want.extend(std::iter::repeat_n(k, m));
        }
        prop_assert_eq!(joined, want);
    }

    #[test]
    fn groupby_sums_are_conserved(rows in 1usize..400, groups in 1u64..20, seed in 0u64..50) {
        let table = KvTable::grouped(rows, groups, seed);
        let mut dev = device();
        let result = groupby::groupby_rime(&mut dev, &table).unwrap();
        let total: u64 = result.iter().map(|(_, s)| s).sum();
        let want: u64 = table.values.iter().map(|&v| v as u32 as u64).sum();
        prop_assert_eq!(total, want, "aggregation conserves the payload sum");
        // Group keys come out sorted and distinct.
        prop_assert!(result.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn join_is_commutative(seed in 0u64..40) {
        let tables = JoinTables::with_overlap(150, 0.4, seed);
        let mut dev = device();
        let ab = mergejoin::mergejoin_rime(&mut dev, &tables).unwrap();
        let flipped = JoinTables { left: tables.right.clone(), right: tables.left.clone() };
        let ba = mergejoin::mergejoin_rime(&mut dev, &flipped).unwrap();
        prop_assert_eq!(ab, ba);
    }

    #[test]
    fn spq_total_order_of_removals(seed in 0u64..30, ratio in 1u32..5) {
        let stream = PacketStream::generate(40, 25, ratio, seed);
        let dev = device();
        let removed = spq::spq_rime(&dev, &stream).unwrap();
        prop_assert_eq!(removed.len(), stream.removes());
        // Every removed key was actually offered.
        let mut offered: Vec<u64> = stream.initial.clone();
        for e in &stream.events {
            if let rime_workloads::PacketEvent::Add(k) = e {
                offered.push(*k);
            }
        }
        for k in &removed {
            prop_assert!(offered.contains(k));
        }
    }
}
