//! Performance-model validation: the analytic traffic formulas must
//! track the exact trace-driven cache simulation, and the headline
//! paper factors (Figs. 15–19) must land in their reported ranges.

use rime_core::{Placement, RimePerfConfig};
use rime_energy::{baseline_energy, rime_energy, PowerModel, SystemKind};
use rime_kernels::exec::{merge_sort, quick_sort, radix_sort, TracedMemory};
use rime_kernels::{rime_sort, SortAlgorithm};
use rime_memsim::SystemConfig;
use rime_workloads::keys::{generate_u64, KeyDistribution};

/// The analytic below-cache traffic must be within a small factor of the
/// measured trace at validation scale (1-core system, 2M keys ≫ L2).
#[test]
fn analytic_traffic_tracks_measured_traffic() {
    let n = 2_000_000u64;
    let keys = generate_u64(n as usize, KeyDistribution::Uniform, 7);
    let sys = SystemConfig::off_chip(1);

    let cases: [(SortAlgorithm, Box<dyn Fn() -> u64>); 3] = [
        (
            SortAlgorithm::Merge,
            Box::new(|| {
                let mut mem = TracedMemory::traced();
                let b = mem.add_buf(generate_u64(2_000_000, KeyDistribution::Uniform, 7));
                let _ = merge_sort(&mut mem, b);
                mem.mem_accesses()
            }),
        ),
        (
            SortAlgorithm::Quick,
            Box::new(|| {
                let mut mem = TracedMemory::traced();
                let b = mem.add_buf(generate_u64(2_000_000, KeyDistribution::Uniform, 7));
                quick_sort(&mut mem, b);
                mem.mem_accesses()
            }),
        ),
        (
            SortAlgorithm::Radix,
            Box::new(|| {
                let mut mem = TracedMemory::traced();
                let b = mem.add_buf(generate_u64(2_000_000, KeyDistribution::Uniform, 7));
                let _ = radix_sort(&mut mem, b);
                mem.mem_accesses()
            }),
        ),
    ];
    let _ = &keys;

    for (alg, measure) in cases {
        let measured = measure() as f64;
        let modeled = alg.workload(n, &sys).mem_lines() as f64;
        let ratio = modeled / measured;
        assert!(
            (0.2..5.0).contains(&ratio),
            "{}: modeled {modeled:.0} vs measured {measured:.0} (ratio {ratio:.2})",
            alg.label()
        );
    }
}

/// Fig. 15's headline factors: RIME over the off-chip baseline, averaged
/// across the size sweep, must land near the paper's 30.2 / 12.4 / 50.7 /
/// 26× (we accept half-to-double).
#[test]
fn fig15_average_gains_in_paper_band() {
    let sizes = [1_000_000u64, 4_000_000, 16_000_000, 65_000_000];
    let sys = SystemConfig::off_chip(16);
    let perf = RimePerfConfig::table1();
    let paper = [
        (SortAlgorithm::Merge, 30.2),
        (SortAlgorithm::Quick, 12.4),
        (SortAlgorithm::Radix, 50.7),
        (SortAlgorithm::Heap, 26.0),
    ];
    for (alg, target) in paper {
        let mean_gain: f64 = sizes
            .iter()
            .map(|&n| rime_sort::throughput_mkps(n, &perf) / alg.throughput_mkps(n, &sys))
            .sum::<f64>()
            / sizes.len() as f64;
        assert!(
            mean_gain > target / 2.0 && mean_gain < target * 2.0,
            "{}: gain {mean_gain:.1}× vs paper {target}×",
            alg.label()
        );
    }
}

/// HBM's average gain over off-chip for the sort kernels: the paper
/// reports 2.4 / 2.3 / 8.1 / 1.9×.
#[test]
fn fig15_hbm_gains_in_paper_band() {
    let n = 16_000_000u64;
    let off = SystemConfig::off_chip(16);
    let hbm = SystemConfig::in_package(16);
    for (alg, target) in [
        (SortAlgorithm::Merge, 2.4),
        (SortAlgorithm::Quick, 2.3),
        (SortAlgorithm::Radix, 8.1),
        (SortAlgorithm::Heap, 1.9),
    ] {
        let gain = alg.throughput_mkps(n, &hbm) / alg.throughput_mkps(n, &off);
        assert!(
            gain > (target / 2.5f64).max(1.0) && gain < target * 2.5,
            "{}: HBM gain {gain:.2}× vs paper {target}×",
            alg.label()
        );
    }
}

/// RIME's throughput must be size-insensitive (§VII-A) while baselines
/// degrade with size.
#[test]
fn rime_flat_baselines_degrade() {
    let perf = RimePerfConfig::table1();
    let sys = SystemConfig::off_chip(16);
    let r_small = rime_sort::throughput_mkps(500_000, &perf);
    let r_big = rime_sort::throughput_mkps(65_000_000, &perf);
    assert!((r_small - r_big).abs() / r_big < 0.1);

    let m_small = SortAlgorithm::Merge.throughput_mkps(500_000, &sys);
    let m_big = SortAlgorithm::Merge.throughput_mkps(65_000_000, &sys);
    assert!(m_big < m_small, "baseline degrades: {m_small} -> {m_big}");
}

/// Fig. 19: RIME reduces system energy by more than 90 % on a
/// sort-dominated application at 65M keys.
#[test]
fn fig19_energy_reduction_over_90_percent() {
    let n = 65_000_000u64;
    let sys = SystemConfig::off_chip(16);
    let model = PowerModel::table1();
    let perf = RimePerfConfig::table1();

    let exec = SortAlgorithm::Merge.workload(n, &sys).execute(&sys);
    let base = baseline_energy(&model, SystemKind::OffChip, &exec, 16, 2.0);

    let secs = rime_sort::sort_seconds(n, &perf);
    let rime = rime_energy(&model, secs, secs * 2.0, n, 2 * n, 16);
    let reduction = 1.0 - rime.total_j() / base.total_j();
    assert!(reduction > 0.9, "reduction {reduction:.3}");
}

/// The functional device's modeled busy time must agree with the
/// analytic perf model's chip-side rate for a single-chip stream.
#[test]
fn functional_counters_match_analytic_chip_rate() {
    use rime_core::{RimeConfig, RimeDevice};
    let dev = RimeDevice::new(RimeConfig::small());
    let n = 256u64;
    let region = dev.alloc(n).unwrap();
    let keys: Vec<u64> = (0..n).rev().collect();
    dev.write(region, 0, &keys).unwrap();
    dev.reset_counters();
    dev.init_all::<u64>(region).unwrap();
    let mut extracted = 0u64;
    while dev.rime_min::<u64>(region).unwrap().is_some() {
        extracted += 1;
    }
    assert_eq!(extracted, n);
    // The busiest chip's modeled time per extraction must sit at or
    // below tCompute + tRead (early exit only shortens searches), and
    // above tRead (some search always happens).
    let busy_ns = dev.modeled_busy_ns();
    let timing = rime_memristive::ArrayTiming::table1();
    let per_chip_share = n as f64 / dev.spanned_chips(region).max(1) as f64;
    let upper = per_chip_share * (timing.t_compute_ns + timing.t_read_ns) * 1.05;
    let lower = per_chip_share * timing.t_read_ns;
    assert!(busy_ns < upper, "busy {busy_ns} vs upper {upper}");
    assert!(busy_ns > lower, "busy {busy_ns} vs lower {lower}");
}

/// The RIME perf model's O(k) ranking: finding the k-th statistic of 65M
/// keys costs k extractions, not a sort.
#[test]
fn ranking_is_o_k_not_o_n() {
    let perf = RimePerfConfig::table1();
    let rank_100 = perf.stream_seconds(65_000_000, 100, Placement::Striped);
    let sort_all = perf.stream_seconds(65_000_000, 65_000_000, Placement::Striped);
    assert!(rank_100 * 1_000.0 < sort_all);
}
